"""Unit tests for the spatial-grid neighbor index."""

from __future__ import annotations

import random

import pytest

from repro.geometry import Point
from repro.net import SpatialGridIndex

pytestmark = pytest.mark.fast


def brute_force(positions, center, radius):
    return sorted(
        node for node, p in positions.items()
        if p.within(center, radius)
    )


def test_rejects_nonpositive_cell_size():
    with pytest.raises(ValueError):
        SpatialGridIndex(cell_size=0.0)
    with pytest.raises(ValueError):
        SpatialGridIndex(cell_size=-1.0)


def test_basic_membership_and_eviction():
    index = SpatialGridIndex(cell_size=1.0)
    index.update({0: Point(0.0, 0.0), 1: Point(5.0, 5.0)})
    assert len(index) == 2 and 0 in index and 1 in index
    assert index.coords_of(1) == (5.0, 5.0)

    index.update({1: Point(5.0, 5.0)})  # node 0 vanished
    assert len(index) == 1 and 0 not in index

    index.update({})
    assert len(index) == 0 and index.cell_count() == 0


def test_update_is_incremental():
    index = SpatialGridIndex(cell_size=1.0)
    positions = {i: Point(float(i), 0.0) for i in range(10)}
    assert index.update(positions) == 10
    # Nothing moved: zero work reported.
    assert index.update(positions) == 0
    # One node moves within its cell, another across cells.
    positions[3] = Point(3.2, 0.1)
    positions[7] = Point(-4.0, -4.0)
    assert index.update(positions) == 2
    assert index.neighbors_within(Point(-4.0, -4.0), 0.5) == [7]
    # A removal counts as movement too.
    del positions[5]
    assert index.update(positions) == 1
    assert 5 not in index


def test_exact_boundary_inclusion():
    """Distance exactly equal to the radius is *inside* (<=), matching
    Point.within bit for bit."""
    index = SpatialGridIndex(cell_size=1.5)
    index.update({0: Point(0.0, 0.0), 1: Point(3.0, 0.0), 2: Point(3.0, 4.0)})
    assert index.neighbors_within(Point(0.0, 0.0), 3.0) == [0, 1]
    assert index.neighbors_within(Point(0.0, 0.0), 5.0) == [0, 1, 2]
    assert index.neighbors_within(Point(0.0, 0.0), 4.999999) == [0, 1]


@pytest.mark.parametrize("seed", range(8))
def test_neighbors_match_brute_force(seed):
    rng = random.Random(seed)
    cell = rng.choice([0.3, 1.0, 2.5])
    index = SpatialGridIndex(cell_size=cell)
    positions = {}
    for step in range(30):
        # Random churn each step.
        for node in range(rng.randint(0, 25)):
            positions[node] = Point(rng.uniform(-8, 8), rng.uniform(-8, 8))
        for node in list(positions):
            if rng.random() < 0.1:
                del positions[node]
        index.update(positions)
        center = Point(rng.uniform(-8, 8), rng.uniform(-8, 8))
        radius = rng.uniform(0.1, 6.0)
        assert index.neighbors_within(center, radius) == \
            brute_force(positions, center, radius), (seed, step)


def test_candidates_superset_of_true_neighbors():
    rng = random.Random(99)
    index = SpatialGridIndex(cell_size=1.5)
    positions = {i: Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
                 for i in range(60)}
    index.update(positions)
    center = Point(0.25, -0.75)
    radius = 2.0
    candidates = {node for node, _, _ in index.candidates(center.x, center.y, radius)}
    assert set(brute_force(positions, center, radius)) <= candidates


def test_clear_resets_everything():
    index = SpatialGridIndex(cell_size=1.0)
    index.update({0: Point(1.0, 1.0)})
    index.clear()
    assert len(index) == 0
    assert index.neighbors_within(Point(1.0, 1.0), 10.0) == []
    # Usable again after clear.
    index.update({5: Point(0.0, 0.0)})
    assert index.neighbors_within(Point(0.0, 0.0), 0.1) == [5]
