"""Differential verification: fast paths are byte-identical to reference.

The headline guarantee of the performance layer.  Three levels:

1. **Channel** — randomized geometries, radii, broadcast sets and
   adversaries; the indexed path must produce a Reception map equal to
   the reference all-pairs path, key set and all.
2. **Simulator** — whole protocol executions (CHA family, baselines)
   under mobility churn, crashes and every adversary class; the cached
   engine + indexed channel must produce byte-identical Trace pickles
   against the uncached engine + reference channel, in every on/off
   combination of the two switches.
3. **Environment switch** — ``REPRO_REFERENCE_CHANNEL=1`` must actually
   pin new channels/simulators to the slow path.

Everything here is marked ``fast``: this suite is the regression gate
for any future change to the channel or engine internals.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import EnvironmentSpec, MajorityRSM, NaiveRSM, TwoPhaseCHA
from repro.experiment.runner import run
from repro.geometry import Point
from repro.net import (
    Channel,
    Crash,
    CrashPoint,
    CrashSchedule,
    Message,
    NoiseBurstAdversary,
    RadioSpec,
    RandomLossAdversary,
    RandomWaypointMobility,
    ScriptedAdversary,
    Simulator,
    TargetedDropAdversary,
    WindowAdversary,
    reference_channel_forced,
)
from repro.net.simulator import Simulator as NetSimulator

pytestmark = pytest.mark.fast


# ----------------------------------------------------------------------
# Channel level
# ----------------------------------------------------------------------

def _random_world(rng: random.Random):
    n = rng.randint(1, 40)
    r1 = rng.uniform(0.05, 3.0)
    r2 = r1 * rng.uniform(1.0, 2.5)
    rcf = rng.choice([0, 0, 3, 50])
    spec = RadioSpec(r1=r1, r2=r2, rcf=rcf)
    span = rng.choice([1.0, 4.0, 20.0])
    positions = {
        i: Point(rng.uniform(-span, span), rng.uniform(-span, span))
        for i in range(n)
    }
    broadcasts = {
        i: Message(i, f"m{i}")
        for i in range(n) if rng.random() < rng.choice([0.05, 0.3, 0.9])
    }
    return spec, positions, broadcasts


def _adversary_pair(kind: str, seed: int):
    """Two independent, identically seeded adversaries (stateful RNGs
    must not be shared between the two paths)."""
    def make():
        if kind == "none":
            return None
        if kind == "loss":
            return RandomLossAdversary(p_drop=0.4, p_false=0.2, seed=seed)
        if kind == "window-loss":
            return WindowAdversary(
                RandomLossAdversary(p_drop=0.5, seed=seed), start=1, until=3)
        if kind == "targeted":
            return TargetedDropAdversary([0, 1], start=0, until=4)
        if kind == "noise":
            return NoiseBurstAdversary(p_false=0.5, seed=seed)
        raise AssertionError(kind)
    return make(), make()


@pytest.mark.parametrize("adversary_kind",
                         ["none", "loss", "window-loss", "targeted", "noise"])
@pytest.mark.parametrize("seed", range(6))
def test_channel_differential_randomized(seed, adversary_kind):
    rng = random.Random(hash((seed, adversary_kind)) & 0xFFFF_FFFF)
    for trial in range(20):
        spec, positions, broadcasts = _random_world(rng)
        adv_fast, adv_ref = _adversary_pair(adversary_kind, seed * 31 + trial)
        fast = Channel(spec, adv_fast, use_reference=False)
        ref = Channel(spec, adv_ref, use_reference=True)
        for r in range(5):
            got = fast.deliver(r, positions, broadcasts)
            want = ref.deliver(r, positions, broadcasts)
            assert got == want
            assert set(got) == set(positions)


def test_channel_differential_incremental_mobility():
    """The index's incremental updates must track moving geometries."""
    rng = random.Random(42)
    spec = RadioSpec(r1=1.0, r2=1.5, rcf=0)
    fast = Channel(spec, use_reference=False)
    ref = Channel(spec, use_reference=True)
    positions = {i: Point(rng.uniform(-4, 4), rng.uniform(-4, 4))
                 for i in range(25)}
    for r in range(40):
        # Churn: some nodes move (a few far, most near), some vanish,
        # some appear.
        for node in list(positions):
            roll = rng.random()
            if roll < 0.3:
                p = positions[node]
                positions[node] = Point(p.x + rng.uniform(-0.2, 0.2),
                                        p.y + rng.uniform(-0.2, 0.2))
            elif roll < 0.35:
                positions[node] = Point(rng.uniform(-4, 4),
                                        rng.uniform(-4, 4))
            elif roll < 0.4:
                del positions[node]
        if rng.random() < 0.5:
            positions[100 + r] = Point(rng.uniform(-4, 4), rng.uniform(-4, 4))
        broadcasts = {i: Message(i, ("p", i, r))
                      for i in positions if rng.random() < 0.4}
        assert fast.deliver(r, positions, broadcasts) == \
            ref.deliver(r, positions, broadcasts)


@settings(max_examples=40)
@given(st.data())
def test_channel_differential_hypothesis(data):
    """Hypothesis sweep: tight integer-ish geometries hammer the exact
    boundary cases (distance == radius, shared cells, r1 == r2)."""
    n = data.draw(st.integers(1, 12), label="n")
    coords = st.integers(-4, 4).map(float)
    positions = {
        i: Point(data.draw(coords), data.draw(coords)) for i in range(n)
    }
    r1 = data.draw(st.sampled_from([1.0, 2.0, 3.0]), label="r1")
    r2 = data.draw(st.sampled_from([1.0, 1.5, 2.0]), label="factor") * r1
    spec = RadioSpec(r1=r1, r2=max(r1, r2), rcf=0)
    senders = data.draw(st.sets(st.integers(0, n - 1)), label="senders")
    broadcasts = {i: Message(i, f"m{i}") for i in senders}
    fast = Channel(spec, use_reference=False)
    ref = Channel(spec, use_reference=True)
    assert fast.deliver(0, positions, broadcasts) == \
        ref.deliver(0, positions, broadcasts)


def test_channel_positions_unchanged_hint():
    spec = RadioSpec(r1=1.0, r2=1.5)
    fast = Channel(spec, use_reference=False)
    ref = Channel(spec, use_reference=True)
    positions = {i: Point(float(i % 5), float(i // 5)) for i in range(20)}
    broadcasts = {3: Message(3, "x"), 11: Message(11, "y")}
    first = fast.deliver(0, positions, broadcasts)
    hinted = fast.deliver(1, positions, broadcasts, positions_unchanged=True)
    assert first == hinted == ref.deliver(0, positions, broadcasts)


# ----------------------------------------------------------------------
# Simulator level: byte-identical traces
# ----------------------------------------------------------------------

def _spec_for(protocol, n, instances, environment):
    return ExperimentSpec(
        protocol=protocol,
        world=ClusterWorld(n=n, rcf=environment.pop("rcf", 0)),
        environment=EnvironmentSpec(**environment),
        workload=WorkloadSpec(instances=instances),
    )


def _trace_bytes(spec_factory, *, sim_fast: bool, channel_fast: bool) -> bytes:
    def instrument(sim):
        sim.fast_path = sim_fast
        sim.channel.use_reference = not channel_fast
    result = run(spec_factory(), instrument=instrument)
    return pickle.dumps(result.trace)


_MODES = [(True, True), (True, False), (False, True), (False, False)]


def _environments():
    yield "benign", lambda: {}
    yield "lossy", lambda: {
        "rcf": 60,
        "adversary": WindowAdversary(
            RandomLossAdversary(p_drop=0.3, p_false=0.3, seed=5), until=40),
    }
    yield "targeted+noise", lambda: {
        "rcf": 30,
        "adversary": TargetedDropAdversary([1], until=20),
        "crashes": CrashSchedule([
            Crash(0, 10, CrashPoint.AFTER_SEND),
            Crash(2, 17, CrashPoint.BEFORE_SEND),
        ]),
    }
    yield "bursty", lambda: {
        "adversary": NoiseBurstAdversary(p_false=0.4, until=25, seed=9),
    }


@pytest.mark.parametrize("protocol_factory",
                         [CHA, TwoPhaseCHA, NaiveRSM, MajorityRSM],
                         ids=lambda f: f.__name__)
@pytest.mark.parametrize("env_name,env_factory", list(_environments()),
                         ids=[name for name, _ in _environments()])
def test_simulator_traces_byte_identical(protocol_factory, env_name,
                                         env_factory):
    def spec_factory():
        if protocol_factory is MajorityRSM:
            return ExperimentSpec(
                protocol=MajorityRSM(),
                world=ClusterWorld(n=7, rcf=env_factory().pop("rcf", 0)),
                environment=EnvironmentSpec(**{
                    k: v for k, v in env_factory().items() if k != "rcf"
                }),
                workload=WorkloadSpec(rounds=45),
            )
        return _spec_for(protocol_factory(), 7, 15, env_factory())

    reference = _trace_bytes(spec_factory, sim_fast=False, channel_fast=False)
    for sim_fast, channel_fast in _MODES[:-1]:
        assert _trace_bytes(
            spec_factory, sim_fast=sim_fast, channel_fast=channel_fast,
        ) == reference, (sim_fast, channel_fast)


def test_simulator_traces_byte_identical_under_mobility():
    """Mobility churn: waypoint-roaming nodes join late and crash."""
    def build(sim_fast: bool, channel_fast: bool) -> bytes:
        sim = Simulator(
            spec=RadioSpec(r1=1.0, r2=1.5, rcf=10),
            adversary=RandomLossAdversary(p_drop=0.25, seed=3),
            crashes=CrashSchedule.of({2: 25}),
            fast_path=sim_fast,
        )
        sim.channel.use_reference = not channel_fast

        class Chatter:
            """Minimal process: broadcasts its id every few rounds."""
            def __init__(self, me): self.me = me
            def contend(self, r): return None
            def send(self, r, active):
                return ("chat", self.me, r) if (r + self.me) % 3 == 0 else None
            def deliver(self, r, messages, collision): pass

        for i in range(12):
            mobility = RandomWaypointMobility(
                Point(i * 0.3 - 2.0, 0.0), arena=(-3, -3, 3, 3),
                speed=0.15, seed=100 + i,
            )
            sim.add_node(Chatter(i), mobility, start_round=0 if i < 9 else 5)
        sim.run(40)
        return pickle.dumps(sim.trace)

    reference = build(False, False)
    assert build(True, True) == reference
    assert build(True, False) == reference
    assert build(False, True) == reference


def test_vi_emulation_traces_byte_identical():
    from repro.experiment import DeployedWorld, DeviceSpec, VIEmulation
    from repro.vi.program import CounterProgram
    from repro.vi.schedule import VNSite

    def spec_factory():
        sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(0.5, 0.0)))
        devices = tuple(
            DeviceSpec(mobility=Point(site.location.x + dx, 0.1 * (j + 1)))
            for site in sites
            for j, dx in enumerate((-0.1, 0.1))
        )
        return ExperimentSpec(
            protocol=VIEmulation(programs={0: CounterProgram(),
                                           1: CounterProgram()}),
            world=DeployedWorld(sites=sites, devices=devices),
            workload=WorkloadSpec(virtual_rounds=8),
        )

    reference = _trace_bytes(spec_factory, sim_fast=False, channel_fast=False)
    for sim_fast, channel_fast in _MODES[:-1]:
        assert _trace_bytes(
            spec_factory, sim_fast=sim_fast, channel_fast=channel_fast,
        ) == reference, (sim_fast, channel_fast)


def test_instance_level_contend_override_matches_reference():
    """A process that gains contend() as an *instance* attribute must be
    seen by the fast path's contender precomputation."""
    from repro.contention import LeaderElectionCM
    from repro.net.node import Process

    class Quiet(Process):
        def __init__(self):
            self.active_rounds: list[int] = []
        def send(self, r, active):
            if active:
                self.active_rounds.append(r)
                return ("beep", r)
            return None
        def deliver(self, r, messages, collision): pass

    def build(fast: bool):
        sim = Simulator(spec=RadioSpec(r1=1.0, r2=1.5),
                        cms={"C": LeaderElectionCM(stable_round=0)},
                        fast_path=fast)
        sim.channel.use_reference = not fast
        procs = []
        for i in range(3):
            p = Quiet()
            p.contend = lambda r: "C"  # instance-level override
            sim.add_node(p, Point(0.1 * i, 0.0))
            procs.append(p)
        sim.run(6)
        return pickle.dumps(sim.trace), [p.active_rounds for p in procs]

    ref_bytes, ref_active = build(False)
    fast_bytes, fast_active = build(True)
    assert fast_bytes == ref_bytes
    assert fast_active == ref_active
    assert any(ref_active), "someone must have been advised active"


# ----------------------------------------------------------------------
# The environment switch
# ----------------------------------------------------------------------

def test_reference_channel_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_REFERENCE_CHANNEL", raising=False)
    assert not reference_channel_forced()
    assert not Channel(RadioSpec(r1=1.0, r2=1.5)).use_reference
    assert NetSimulator(spec=RadioSpec(r1=1.0, r2=1.5)).fast_path

    monkeypatch.setenv("REPRO_REFERENCE_CHANNEL", "1")
    assert reference_channel_forced()
    assert Channel(RadioSpec(r1=1.0, r2=1.5)).use_reference
    assert not NetSimulator(spec=RadioSpec(r1=1.0, r2=1.5)).fast_path

    monkeypatch.setenv("REPRO_REFERENCE_CHANNEL", "0")
    assert not reference_channel_forced()
