"""The simulator's per-round observer hook and trace-retention switch."""

from repro.core import CHAProcess, ROUNDS_PER_INSTANCE
from repro.contention import LeaderElectionCM
from repro.experiment import WireStatsObserver
from repro.net import RadioSpec, Simulator
from repro.net.trace import RoundRecord
from repro.geometry import Point


def build_sim(**kwargs):
    sim = Simulator(spec=RadioSpec(r1=1.0, r2=1.5),
                    cms={"C": LeaderElectionCM(stable_round=0)}, **kwargs)
    for i in range(3):
        sim.add_node(CHAProcess(propose=lambda k, i=i: f"v{i}.{k}",
                                cm_name="C"),
                     Point(0.05 * i, 0.0))
    return sim


class TestObserverHook:
    def test_observer_sees_every_round_record(self):
        seen = []
        sim = build_sim(observers=[seen.append])
        sim.run(2 * ROUNDS_PER_INSTANCE)
        assert [rec.round for rec in seen] == list(range(6))
        assert all(isinstance(rec, RoundRecord) for rec in seen)

    def test_add_observer_after_construction(self):
        sim = build_sim()
        seen = []
        sim.run(3)
        sim.add_observer(seen.append)
        sim.run(3)
        assert [rec.round for rec in seen] == [3, 4, 5]

    def test_observer_records_match_trace(self):
        seen = []
        sim = build_sim(observers=[seen.append])
        sim.run(6)
        assert seen == list(sim.trace)


class TestRecordTraceSwitch:
    def test_record_trace_false_keeps_trace_empty(self):
        sim = build_sim(record_trace=False)
        sim.run(6)
        assert len(sim.trace) == 0
        assert sim.current_round == 6

    def test_observers_fire_without_trace(self):
        wire = WireStatsObserver()
        sim = build_sim(record_trace=False, observers=[wire])
        sim.run(2 * ROUNDS_PER_INSTANCE)
        assert wire.rounds == 6
        assert wire.total_broadcasts > 0
        assert wire.max_message_size > 0

    def test_wire_stats_equal_trace_derived_stats(self):
        wire = WireStatsObserver()
        sim = build_sim(observers=[wire])
        sim.run(9)
        assert wire.total_broadcasts == sim.trace.total_broadcasts()
        assert wire.max_message_size == sim.trace.max_message_size()
        assert wire.mean_message_size == sim.trace.mean_message_size()
