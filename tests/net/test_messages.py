"""Unit tests for message envelopes and wire-size accounting."""

from dataclasses import dataclass

import pytest

from repro.core.ballot import Ballot, BallotPayload, VetoPayload
from repro.net.messages import (
    CONTAINER_OVERHEAD,
    INT_SIZE,
    Message,
    NONE_SIZE,
    wire_size,
)


class TestWireSize:
    def test_none(self):
        assert wire_size(None) == NONE_SIZE

    def test_bool_is_one_byte(self):
        assert wire_size(True) == 1
        assert wire_size(False) == 1

    def test_int_constant_regardless_of_magnitude(self):
        assert wire_size(0) == wire_size(10**100) == INT_SIZE

    def test_float(self):
        assert wire_size(1.5) == 8

    def test_str_length_prefixed(self):
        assert wire_size("abc") == CONTAINER_OVERHEAD + 3

    def test_bytes(self):
        assert wire_size(b"abcd") == CONTAINER_OVERHEAD + 4

    def test_tuple_sums_elements(self):
        assert wire_size((1, 2)) == CONTAINER_OVERHEAD + 2 * INT_SIZE

    def test_nested_containers(self):
        inner = wire_size((1,))
        assert wire_size(((1,), (1,))) == CONTAINER_OVERHEAD + 2 * inner

    def test_dict(self):
        assert wire_size({"a": 1}) == CONTAINER_OVERHEAD + wire_size("a") + INT_SIZE

    def test_dataclass_encoded_as_fields(self):
        b = Ballot("v", 3)
        assert wire_size(b) == CONTAINER_OVERHEAD + wire_size("v") + INT_SIZE

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            wire_size(object())

    def test_ballot_payload_size_independent_of_instance(self):
        # Theorem 14: instance pointers are constant size.
        small = BallotPayload("t", 1, Ballot("vv", 0))
        large = BallotPayload("t", 10**9, Ballot("vv", 10**9 - 1))
        assert wire_size(small) == wire_size(large)

    def test_veto_payload_constant(self):
        assert wire_size(VetoPayload("t", 1, 1)) == wire_size(VetoPayload("t", 999, 2))


class TestMessage:
    def test_size_property_matches_wire_size(self):
        m = Message(sender=3, payload=("x", 1))
        assert m.size == wire_size(("x", 1))

    def test_message_is_frozen(self):
        m = Message(sender=0, payload="p")
        with pytest.raises(Exception):
            m.payload = "q"  # type: ignore[misc]
