"""Unit tests for the GPS-style location service."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.net import LocationService


class TestLocationService:
    def test_fresh_service_tracks_exactly(self):
        svc = LocationService(update_period=1)
        svc.observe(0, {0: Point(1, 1)})
        assert svc.locate(0) == Point(1, 1)
        svc.observe(1, {0: Point(2, 2)})
        assert svc.locate(0) == Point(2, 2)

    def test_stale_service_holds_old_fix(self):
        svc = LocationService(update_period=3)
        svc.observe(0, {0: Point(0, 0)})
        svc.observe(1, {0: Point(1, 0)})
        svc.observe(2, {0: Point(2, 0)})
        assert svc.locate(0) == Point(0, 0)
        svc.observe(3, {0: Point(3, 0)})
        assert svc.locate(0) == Point(3, 0)

    def test_new_node_gets_first_fix_between_updates(self):
        svc = LocationService(update_period=5)
        svc.observe(0, {0: Point(0, 0)})
        svc.observe(1, {0: Point(1, 0), 7: Point(9, 9)})
        assert svc.locate(7) == Point(9, 9)
        assert svc.locate(0) == Point(0, 0)  # existing fix unchanged

    def test_unknown_node_raises(self):
        svc = LocationService()
        with pytest.raises(KeyError):
            svc.locate(42)

    def test_locator_for(self):
        svc = LocationService()
        svc.observe(0, {3: Point(4, 5)})
        locator = svc.locator_for(3)
        assert locator() == Point(4, 5)

    def test_staleness_bound(self):
        assert LocationService(update_period=1).staleness_bound == 0
        assert LocationService(update_period=4).staleness_bound == 3

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            LocationService(update_period=0)
