"""Unit tests for execution traces."""

import pytest

from repro.geometry import Point
from repro.net import Message
from repro.net.trace import RoundRecord, Trace


def record(r, broadcasts=None, collisions=None):
    broadcasts = broadcasts or {}
    return RoundRecord(
        round=r,
        positions={0: Point(0, 0)},
        broadcasts={s: Message(s, p) for s, p in broadcasts.items()},
        receptions={},
        collisions=collisions or {},
        advised_active=frozenset(),
        crashed=frozenset(),
    )


class TestTrace:
    def test_append_and_index(self):
        t = Trace()
        t.append(record(0))
        t.append(record(1))
        assert len(t) == 2
        assert t[1].round == 1

    def test_rejects_out_of_order_rounds(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.append(record(3))

    def test_total_broadcasts(self):
        t = Trace()
        t.append(record(0, broadcasts={0: "a", 1: "b"}))
        t.append(record(1, broadcasts={0: "c"}))
        assert t.total_broadcasts() == 3

    def test_message_sizes_ordering(self):
        t = Trace()
        t.append(record(0, broadcasts={1: "xx", 0: "y"}))
        # Sorted by sender id within the round.
        assert t.message_sizes() == [Message(0, "y").size, Message(1, "xx").size]

    def test_max_and_mean_sizes(self):
        t = Trace()
        t.append(record(0, broadcasts={0: "a", 1: "abc"}))
        sizes = t.message_sizes()
        assert t.max_message_size() == max(sizes)
        assert t.mean_message_size() == sum(sizes) / 2

    def test_empty_trace_metrics(self):
        t = Trace()
        assert t.max_message_size() == 0
        assert t.mean_message_size() == 0.0

    def test_collision_rounds(self):
        t = Trace()
        t.append(record(0, collisions={0: True}))
        t.append(record(1, collisions={0: False}))
        t.append(record(2, collisions={0: True}))
        assert t.collision_rounds(0) == [0, 2]

    def test_broadcasts_by(self):
        t = Trace()
        t.append(record(0, broadcasts={0: "a"}))
        t.append(record(1, broadcasts={1: "b"}))
        t.append(record(2, broadcasts={0: "c"}))
        got = t.broadcasts_by(0)
        assert [(r, m.payload) for r, m in got] == [(0, "a"), (2, "c")]

    def test_iteration(self):
        t = Trace()
        t.append(record(0))
        assert [rec.round for rec in t] == [0]
