"""Unit tests for mobility models."""

import math

import pytest

from repro.geometry import Point
from repro.net.mobility import (
    LinearMobility,
    OrbitMobility,
    RandomWaypointMobility,
    StaticMobility,
    WaypointMobility,
)


class TestStatic:
    def test_never_moves(self):
        m = StaticMobility(Point(1, 2))
        assert m.position_at(0) == m.position_at(1000) == Point(1, 2)

    def test_max_speed_zero(self):
        assert StaticMobility(Point(0, 0)).max_speed() == 0.0


class TestLinear:
    def test_positions_follow_velocity(self):
        m = LinearMobility(Point(0, 0), Point(1, -2))
        assert m.position_at(0) == Point(0, 0)
        assert m.position_at(3) == Point(3, -6)

    def test_max_speed_is_velocity_norm(self):
        m = LinearMobility(Point(0, 0), Point(3, 4))
        assert m.max_speed() == 5.0


class TestWaypoint:
    def test_walks_through_waypoints(self):
        m = WaypointMobility(Point(0, 0), [Point(2, 0), Point(2, 2)], speed=1.0)
        assert m.position_at(1) == Point(1, 0)
        assert m.position_at(2) == Point(2, 0)
        assert m.position_at(3) == Point(2, 1)
        assert m.position_at(4) == Point(2, 2)

    def test_parks_at_final_waypoint(self):
        m = WaypointMobility(Point(0, 0), [Point(1, 0)], speed=1.0)
        assert m.position_at(100) == Point(1, 0)

    def test_respects_speed_bound(self):
        m = WaypointMobility(Point(0, 0), [Point(10, 0)], speed=0.5)
        for r in range(20):
            step = m.position_at(r).distance_to(m.position_at(r + 1))
            assert step <= 0.5 + 1e-12

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            WaypointMobility(Point(0, 0), [Point(1, 0)], speed=-1.0)


class TestRandomWaypoint:
    def test_deterministic_given_seed(self):
        kwargs = dict(arena=(0, 0, 10, 10), speed=0.7, seed=42)
        a = RandomWaypointMobility(Point(5, 5), **kwargs)
        b = RandomWaypointMobility(Point(5, 5), **kwargs)
        assert [a.position_at(r) for r in range(50)] == [
            b.position_at(r) for r in range(50)
        ]

    def test_stays_in_arena(self):
        m = RandomWaypointMobility(
            Point(5, 5), arena=(0, 0, 10, 10), speed=2.0, seed=1,
        )
        for r in range(200):
            p = m.position_at(r)
            assert 0 <= p.x <= 10 and 0 <= p.y <= 10

    def test_respects_vmax(self):
        m = RandomWaypointMobility(
            Point(5, 5), arena=(0, 0, 10, 10), speed=0.3, seed=2,
        )
        for r in range(100):
            assert m.position_at(r).distance_to(m.position_at(r + 1)) <= 0.3 + 1e-12

    def test_invalid_arena_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(Point(0, 0), arena=(0, 0, 0, 10), speed=1, seed=0)

    def test_random_access_matches_sequential(self):
        m = RandomWaypointMobility(Point(5, 5), arena=(0, 0, 10, 10), speed=1, seed=3)
        late = m.position_at(30)
        assert m.position_at(30) == late
        assert m.position_at(15) == m.position_at(15)


class TestOrbit:
    def test_stays_within_bounding_box(self):
        m = OrbitMobility(Point(0, 0), radius=1.0, speed=0.5)
        for r in range(100):
            p = m.position_at(r)
            assert abs(p.x) <= 1.0 + 1e-9 and abs(p.y) <= 1.0 + 1e-9

    def test_respects_speed(self):
        m = OrbitMobility(Point(0, 0), radius=2.0, speed=0.25)
        for r in range(100):
            assert m.position_at(r).distance_to(m.position_at(r + 1)) <= 0.25 + 1e-9

    def test_period_wraps(self):
        # Perimeter is 8*radius; with speed 1 and radius 1 the period is 8.
        m = OrbitMobility(Point(0, 0), radius=1.0, speed=1.0)
        assert m.position_at(0) == m.position_at(8)

    def test_zero_speed_parks_at_corner(self):
        m = OrbitMobility(Point(0, 0), radius=1.0, speed=0.0)
        assert m.position_at(0) == m.position_at(57)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            OrbitMobility(Point(0, 0), radius=0.0, speed=1.0)
