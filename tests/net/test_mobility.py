"""Unit tests for mobility models."""

import math

import pytest

from repro.geometry import Point
from repro.net.mobility import (
    LinearMobility,
    OrbitMobility,
    RandomWaypointMobility,
    StaticMobility,
    WaypointMobility,
)


class TestStatic:
    def test_never_moves(self):
        m = StaticMobility(Point(1, 2))
        assert m.position_at(0) == m.position_at(1000) == Point(1, 2)

    def test_max_speed_zero(self):
        assert StaticMobility(Point(0, 0)).max_speed() == 0.0


class TestLinear:
    def test_positions_follow_velocity(self):
        m = LinearMobility(Point(0, 0), Point(1, -2))
        assert m.position_at(0) == Point(0, 0)
        assert m.position_at(3) == Point(3, -6)

    def test_max_speed_is_velocity_norm(self):
        m = LinearMobility(Point(0, 0), Point(3, 4))
        assert m.max_speed() == 5.0


class TestWaypoint:
    def test_walks_through_waypoints(self):
        m = WaypointMobility(Point(0, 0), [Point(2, 0), Point(2, 2)], speed=1.0)
        assert m.position_at(1) == Point(1, 0)
        assert m.position_at(2) == Point(2, 0)
        assert m.position_at(3) == Point(2, 1)
        assert m.position_at(4) == Point(2, 2)

    def test_parks_at_final_waypoint(self):
        m = WaypointMobility(Point(0, 0), [Point(1, 0)], speed=1.0)
        assert m.position_at(100) == Point(1, 0)

    def test_respects_speed_bound(self):
        m = WaypointMobility(Point(0, 0), [Point(10, 0)], speed=0.5)
        for r in range(20):
            step = m.position_at(r).distance_to(m.position_at(r + 1))
            assert step <= 0.5 + 1e-12

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            WaypointMobility(Point(0, 0), [Point(1, 0)], speed=-1.0)


class TestRandomWaypoint:
    def test_deterministic_given_seed(self):
        kwargs = dict(arena=(0, 0, 10, 10), speed=0.7, seed=42)
        a = RandomWaypointMobility(Point(5, 5), **kwargs)
        b = RandomWaypointMobility(Point(5, 5), **kwargs)
        assert [a.position_at(r) for r in range(50)] == [
            b.position_at(r) for r in range(50)
        ]

    def test_stays_in_arena(self):
        m = RandomWaypointMobility(
            Point(5, 5), arena=(0, 0, 10, 10), speed=2.0, seed=1,
        )
        for r in range(200):
            p = m.position_at(r)
            assert 0 <= p.x <= 10 and 0 <= p.y <= 10

    def test_respects_vmax(self):
        m = RandomWaypointMobility(
            Point(5, 5), arena=(0, 0, 10, 10), speed=0.3, seed=2,
        )
        for r in range(100):
            assert m.position_at(r).distance_to(m.position_at(r + 1)) <= 0.3 + 1e-12

    def test_invalid_arena_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(Point(0, 0), arena=(0, 0, 0, 10), speed=1, seed=0)

    def test_random_access_matches_sequential(self):
        m = RandomWaypointMobility(Point(5, 5), arena=(0, 0, 10, 10), speed=1, seed=3)
        late = m.position_at(30)
        assert m.position_at(30) == late
        assert m.position_at(15) == m.position_at(15)


class TestOrbit:
    def test_stays_within_bounding_box(self):
        m = OrbitMobility(Point(0, 0), radius=1.0, speed=0.5)
        for r in range(100):
            p = m.position_at(r)
            assert abs(p.x) <= 1.0 + 1e-9 and abs(p.y) <= 1.0 + 1e-9

    def test_respects_speed(self):
        m = OrbitMobility(Point(0, 0), radius=2.0, speed=0.25)
        for r in range(100):
            assert m.position_at(r).distance_to(m.position_at(r + 1)) <= 0.25 + 1e-9

    def test_period_wraps(self):
        # Perimeter is 8*radius; with speed 1 and radius 1 the period is 8.
        m = OrbitMobility(Point(0, 0), radius=1.0, speed=1.0)
        assert m.position_at(0) == m.position_at(8)

    def test_zero_speed_parks_at_corner(self):
        m = OrbitMobility(Point(0, 0), radius=1.0, speed=0.0)
        assert m.position_at(0) == m.position_at(57)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            OrbitMobility(Point(0, 0), radius=0.0, speed=1.0)


class TestDirtySetProtocol:
    """The moved_in contract: False promises position_at(r) IS
    position_at(r-1) — the identity the batched engine's dirty set
    relies on to skip rebuilding position entries."""

    MODELS = [
        ("static", lambda: StaticMobility(Point(1, 2))),
        ("linear", lambda: LinearMobility(Point(0, 0), Point(0.1, 0.0))),
        ("linear-parked", lambda: LinearMobility(Point(0, 0), Point(0, 0))),
        ("waypoint", lambda: WaypointMobility(
            Point(0, 0), [Point(1, 0), Point(1, 1)], speed=0.3)),
        ("waypoint-parked", lambda: WaypointMobility(Point(2, 2), [], speed=1.0)),
        ("random-waypoint", lambda: RandomWaypointMobility(
            Point(0, 0), arena=(-2, -2, 2, 2), speed=0.4, seed=7)),
        ("orbit", lambda: OrbitMobility(Point(0, 0), radius=1.0, speed=0.5)),
    ]

    @pytest.mark.parametrize("name,factory", MODELS,
                             ids=[name for name, _ in MODELS])
    def test_moved_in_false_implies_identity(self, name, factory):
        model = factory()
        for r in range(1, 60):
            if not model.moved_in(r):
                assert model.position_at(r) is model.position_at(r - 1), \
                    f"{name}: round {r} broke the identity promise"

    def test_waypoint_reports_clean_once_parked(self):
        model = WaypointMobility(Point(0, 0), [Point(0, 1)], speed=0.5)
        horizon = len(model._positions)
        assert all(model.moved_in(r) for r in range(1, horizon))
        assert not any(model.moved_in(r) for r in range(horizon, horizon + 20))

    def test_static_always_clean_conservative_models_always_dirty(self):
        assert not StaticMobility(Point(0, 0)).moved_in(5)
        # Fresh-Point-per-call models must keep the conservative default.
        assert LinearMobility(Point(0, 0), Point(0, 0)).moved_in(5)
        assert OrbitMobility(Point(0, 0), radius=1.0, speed=0.0).moved_in(5)
        assert RandomWaypointMobility(
            Point(0, 0), arena=(-1, -1, 1, 1), speed=0.0, seed=1).moved_in(5)


class TestDirtySetEngineIntegration:
    """k movers among n nodes cost O(k) position updates per round on
    the batched engine (the ISSUE's mobility property test)."""

    class _Counting(WaypointMobility):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.position_calls = 0

        def position_at(self, r):
            self.position_calls += 1
            return super().position_at(r)

    @pytest.mark.parametrize("n,k", [(12, 0), (12, 3), (20, 5)])
    def test_only_movers_pay_position_updates(self, n, k):
        from repro.net import RadioSpec, Simulator

        class Quiet:
            def contend(self, r): return None
            def send(self, r, active): return None
            def deliver(self, r, messages, collision): pass

        sim = Simulator(spec=RadioSpec(r1=1.0, r2=1.5))
        models = []
        for i in range(n):
            if i < k:
                # Long walk: stays dirty for the whole run.
                model = self._Counting(
                    Point(i * 0.1, 0.0), [Point(i * 0.1, 50.0)], speed=0.05)
            else:
                # Parks immediately: dirty only while the engine warms up.
                model = self._Counting(Point(i * 0.1, 0.0), [], speed=1.0)
            models.append(model)
            sim.add_node(Quiet(), model)

        warmup = 2
        sim.run(warmup)
        for m in models:
            m.position_calls = 0
        rounds = 30
        sim.run(rounds)

        movers = models[:k]
        parked = models[k:]
        # Every mover is consulted once per round; every parked node not
        # at all — O(k) total updates, not O(n).
        assert all(m.position_calls == rounds for m in movers)
        assert all(m.position_calls == 0 for m in parked)

    def test_reference_engine_still_consults_everyone(self):
        from repro.net import RadioSpec, Simulator

        class Quiet:
            def contend(self, r): return None
            def send(self, r, active): return None
            def deliver(self, r, messages, collision): pass

        sim = Simulator(spec=RadioSpec(r1=1.0, r2=1.5),
                        use_reference_engine=True)
        model = self._Counting(Point(0, 0), [], speed=1.0)
        sim.add_node(Quiet(), model)
        sim.run(10)
        assert model.position_calls == 10
