"""Unit tests for the quasi-unit-disk collision channel."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.net import Message, RadioSpec, ScriptedAdversary
from repro.net.channel import Channel


def deliver(channel, r, positions, broadcasts):
    msgs = {s: Message(s, p) for s, p in broadcasts.items()}
    return channel.deliver(r, positions, msgs)


@pytest.fixture
def spec():
    return RadioSpec(r1=1.0, r2=2.0, rcf=0)


class TestRadioSpec:
    def test_rejects_r2_below_r1(self):
        with pytest.raises(ConfigurationError):
            RadioSpec(r1=2.0, r2=1.0)

    def test_rejects_nonpositive_r1(self):
        with pytest.raises(ConfigurationError):
            RadioSpec(r1=0.0, r2=1.0)

    def test_rejects_negative_rcf(self):
        with pytest.raises(ConfigurationError):
            RadioSpec(r1=1.0, r2=1.0, rcf=-1)


class TestBasicDelivery:
    def test_single_sender_reaches_r1_neighbor(self, spec):
        ch = Channel(spec)
        rec = deliver(ch, 0, {0: Point(0, 0), 1: Point(0.5, 0)}, {0: "m"})
        assert [m.payload for m in rec[1].messages] == ["m"]
        assert not rec[1].lost_within_r1
        assert not rec[1].lost_within_r2

    def test_sender_hears_itself(self, spec):
        ch = Channel(spec)
        rec = deliver(ch, 0, {0: Point(0, 0), 1: Point(0.5, 0)}, {0: "m"})
        assert [m.payload for m in rec[0].messages] == ["m"]

    def test_out_of_r1_no_delivery(self, spec):
        ch = Channel(spec)
        rec = deliver(ch, 0, {0: Point(0, 0), 1: Point(1.5, 0)}, {0: "m"})
        assert rec[1].messages == ()
        # The sender is within R2, so the loss licences a collision report.
        assert not rec[1].lost_within_r1
        assert rec[1].lost_within_r2

    def test_out_of_r2_silence(self, spec):
        ch = Channel(spec)
        rec = deliver(ch, 0, {0: Point(0, 0), 1: Point(5, 0)}, {0: "m"})
        assert rec[1].messages == ()
        assert not rec[1].lost_within_r1
        assert not rec[1].lost_within_r2

    def test_delivery_on_r1_boundary(self, spec):
        ch = Channel(spec)
        rec = deliver(ch, 0, {0: Point(0, 0), 1: Point(1.0, 0)}, {0: "m"})
        assert [m.payload for m in rec[1].messages] == ["m"]

    def test_no_broadcasts_all_quiet(self, spec):
        ch = Channel(spec)
        rec = deliver(ch, 0, {0: Point(0, 0), 1: Point(0.5, 0)}, {})
        assert rec[0].messages == () and rec[1].messages == ()
        assert not rec[0].lost_within_r2


class TestContention:
    def test_two_senders_in_r2_destroy_each_other(self, spec):
        ch = Channel(spec)
        positions = {0: Point(0, 0), 1: Point(0.5, 0), 2: Point(0.25, 0)}
        rec = deliver(ch, 0, positions, {0: "a", 1: "b"})
        assert rec[2].messages == ()
        assert rec[2].lost_within_r1  # both senders within R1 of node 2

    def test_far_apart_senders_both_deliver(self, spec):
        # Senders more than 2*R2 apart cannot interfere anywhere.
        positions = {0: Point(0, 0), 1: Point(10, 0),
                     2: Point(0.5, 0), 3: Point(10.5, 0)}
        ch = Channel(spec)
        rec = deliver(ch, 0, positions, {0: "a", 1: "b"})
        assert [m.payload for m in rec[2].messages] == ["a"]
        assert [m.payload for m in rec[3].messages] == ["b"]

    def test_interference_from_r2_ring_sender(self, spec):
        # Sender 1 is outside R1 but inside R2 of the receiver: its
        # presence destroys sender 0's message at the receiver.
        positions = {0: Point(0, 0), 1: Point(2.4, 0), 2: Point(0.5, 0)}
        ch = Channel(spec)
        rec = deliver(ch, 0, positions, {0: "a", 1: "b"})
        assert rec[2].messages == ()
        assert rec[2].lost_within_r1

    def test_broadcaster_misses_concurrent_sender(self, spec):
        positions = {0: Point(0, 0), 1: Point(0.5, 0)}
        ch = Channel(spec)
        rec = deliver(ch, 0, positions, {0: "a", 1: "b"})
        # Each hears only itself and has lost the other's message in-R1.
        assert [m.payload for m in rec[0].messages] == ["a"]
        assert rec[0].lost_within_r1
        assert [m.payload for m in rec[1].messages] == ["b"]
        assert rec[1].lost_within_r1

    def test_non_uniform_reception(self, spec):
        # Node 2 is close to both senders (collision); node 3 only hears
        # sender 1 because sender 0 is beyond its R2.  "A message may be
        # received by some nodes, but not others."
        positions = {0: Point(0, 0), 1: Point(4, 0),
                     2: Point(2, 0), 3: Point(4.5, 0)}
        ch = Channel(spec)
        rec = deliver(ch, 0, positions, {0: "a", 1: "b"})
        assert rec[2].messages == ()
        assert [m.payload for m in rec[3].messages] == ["b"]


class TestAdversary:
    def test_adversarial_drop_before_rcf(self):
        spec = RadioSpec(r1=1.0, r2=2.0, rcf=10)
        adv = ScriptedAdversary(drop_script={(0, 1): "all"})
        ch = Channel(spec, adv)
        rec = deliver(ch, 0, {0: Point(0, 0), 1: Point(0.5, 0)}, {0: "m"})
        assert rec[1].messages == ()
        assert rec[1].lost_within_r1

    def test_adversary_silenced_after_rcf(self):
        spec = RadioSpec(r1=1.0, r2=2.0, rcf=5)
        adv = ScriptedAdversary(drop_script={(7, 1): "all"})
        ch = Channel(spec, adv)
        rec = deliver(ch, 7, {0: Point(0, 0), 1: Point(0.5, 0)}, {0: "m"})
        assert [m.payload for m in rec[1].messages] == ["m"]

    def test_selective_drop(self):
        spec = RadioSpec(r1=10.0, r2=10.0, rcf=10)
        adv = ScriptedAdversary(drop_script={(0, 2): [0]})
        ch = Channel(spec, adv)
        positions = {0: Point(0, 0), 1: Point(50, 0), 2: Point(1, 0)}
        # Only node 0 broadcasts; node 1 is far away and irrelevant.
        rec = deliver(ch, 0, positions, {0: "a"})
        assert rec[2].messages == ()
        assert rec[2].lost_within_r1

    def test_unpositioned_broadcaster_rejected(self, spec):
        ch = Channel(spec)
        with pytest.raises(ConfigurationError):
            ch.deliver(0, {1: Point(0, 0)}, {0: Message(0, "m")})
