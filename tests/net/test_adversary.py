"""Unit tests for channel adversaries."""

import pytest

from repro.net import (
    ComposedAdversary,
    Message,
    NoAdversary,
    PartitionAdversary,
    RandomLossAdversary,
    ScriptedAdversary,
)


def tentative(**receivers):
    """Build a tentative-delivery map: receiver -> messages by sender."""
    return {
        recv: tuple(Message(s, f"m{s}") for s in senders)
        for recv, senders in receivers.items()
    }


class TestNoAdversary:
    def test_no_drops(self):
        adv = NoAdversary()
        assert adv.drops(0, tentative(**{"1": [0]})) == {}

    def test_no_false_collisions(self):
        assert not NoAdversary().false_collision(0, 1)


class TestRandomLoss:
    def test_p_zero_drops_nothing(self):
        adv = RandomLossAdversary(p_drop=0.0, seed=1)
        assert adv.drops(0, tentative(**{"1": [0, 2]})) == {}

    def test_p_one_drops_everything(self):
        adv = RandomLossAdversary(p_drop=1.0, seed=1)
        t = {1: (Message(0, "a"), Message(2, "b"))}
        assert adv.drops(0, t) == {1: frozenset({0, 2})}

    def test_deterministic_given_seed(self):
        t = {r: (Message(0, "a"), Message(2, "b")) for r in range(5)}
        a = RandomLossAdversary(p_drop=0.5, seed=9)
        b = RandomLossAdversary(p_drop=0.5, seed=9)
        assert [a.drops(r, t) for r in range(10)] == [b.drops(r, t) for r in range(10)]

    def test_false_collisions_rate(self):
        adv = RandomLossAdversary(p_drop=0.0, p_false=1.0, seed=4)
        assert adv.false_collision(0, 0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomLossAdversary(p_drop=1.5)


class TestScripted:
    def test_drop_all(self):
        adv = ScriptedAdversary(drop_script={(3, 1): "all"})
        t = {1: (Message(0, "a"), Message(2, "b"))}
        assert adv.drops(3, t) == {1: frozenset({0, 2})}

    def test_drop_specific_senders(self):
        adv = ScriptedAdversary(drop_script={(0, 1): [2]})
        t = {1: (Message(0, "a"), Message(2, "b"))}
        assert adv.drops(0, t) == {1: frozenset({2})}

    def test_unlisted_rounds_untouched(self):
        adv = ScriptedAdversary(drop_script={(0, 1): "all"})
        assert adv.drops(5, {1: (Message(0, "a"),)}) == {}

    def test_false_collision_script(self):
        adv = ScriptedAdversary(false_script=[(2, 7)])
        assert adv.false_collision(2, 7)
        assert not adv.false_collision(2, 8)
        assert not adv.false_collision(3, 7)


class TestPartition:
    def test_cross_group_messages_dropped(self):
        adv = PartitionAdversary([[0, 1], [2, 3]], until_round=10)
        t = {0: (Message(1, "a"), Message(2, "b"))}
        assert adv.drops(0, t) == {0: frozenset({2})}

    def test_partition_heals_at_until_round(self):
        adv = PartitionAdversary([[0], [1]], until_round=5)
        t = {0: (Message(1, "a"),)}
        assert adv.drops(5, t) == {}
        assert adv.drops(4, t) == {0: frozenset({1})}

    def test_unknown_nodes_form_their_own_group(self):
        adv = PartitionAdversary([[0]], until_round=10)
        t = {0: (Message(9, "a"),)}
        # Node 9 is in no group: treated as a different group from node 0.
        assert adv.drops(0, t) == {0: frozenset({9})}

    def test_duplicate_membership_rejected(self):
        with pytest.raises(ValueError):
            PartitionAdversary([[0, 1], [1, 2]], until_round=1)


class TestComposed:
    def test_drops_union(self):
        a = ScriptedAdversary(drop_script={(0, 1): [0]})
        b = ScriptedAdversary(drop_script={(0, 1): [2]})
        both = ComposedAdversary(a, b)
        t = {1: (Message(0, "a"), Message(2, "b"))}
        assert both.drops(0, t) == {1: frozenset({0, 2})}

    def test_false_collision_any(self):
        a = ScriptedAdversary(false_script=[(1, 1)])
        b = ScriptedAdversary()
        assert ComposedAdversary(a, b).false_collision(1, 1)
        assert not ComposedAdversary(a, b).false_collision(0, 0)
