"""Differential verification of the batched round engine.

The batched dispatch engine (``Simulator._step_batched``, the default)
must be *byte-identical* to the seed per-node loop
(``Simulator._step_reference``) — traces, outputs, metrics, and
invariant verdicts all pickle to the same bytes — across every protocol
family, under fault plans, and in every combination with the channel and
history reference switches.  This suite is the regression gate for any
change to the engine's dispatch, its dirty-set position cache, the
``RoundBatch`` decode sharing, or any protocol ``deliver_batch``
override.
"""

from __future__ import annotations

import pickle

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import (
    CheckpointCHA,
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    MajorityRSM,
    MetricsSpec,
    NaiveRSM,
    TwoPhaseCHA,
    VIEmulation,
)
from repro.experiment.runner import run
from repro.faults import CrashWave, DetectorNoise, MessageStorm, plan
from repro.geometry import Point
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    NoiseBurstAdversary,
    RadioSpec,
    RandomLossAdversary,
    RandomWaypointMobility,
    Simulator,
    WaypointMobility,
    WindowAdversary,
    reference_engine_forced,
)
from repro.vi.program import CounterProgram
from repro.vi.schedule import VNSite

pytestmark = pytest.mark.fast


def _count_reducer(state, k, value):
    return (state or 0) + 1


def _result_bytes(spec_factory, *, engine_ref: bool,
                  sim_fast: bool = True, channel_fast: bool = True) -> bytes:
    """Pickle of everything observable: trace, outputs, metrics,
    invariant verdicts, and violation contexts."""
    def instrument(sim):
        sim.use_reference_engine = engine_ref
        sim.fast_path = sim_fast
        sim.channel.use_reference = not channel_fast
    result = run(spec_factory(), instrument=instrument)
    return pickle.dumps((result.trace, result.outputs, result.metrics,
                         result.invariants, result.violation_context))


#: (engine_ref, sim_fast, channel_fast) combinations; the all-reference
#: stack is the anchor everything else must match.
MODES = [
    (False, True, True),    # the default production stack
    (False, True, False),
    (False, False, True),
    (False, False, False),
    (True, True, True),
]


def _environments():
    yield "benign", lambda: {}
    yield "lossy", lambda: {
        "rcf": 60,
        "adversary": WindowAdversary(
            RandomLossAdversary(p_drop=0.3, p_false=0.3, seed=5), until=40),
    }
    yield "crashes+noise", lambda: {
        "rcf": 30,
        "adversary": NoiseBurstAdversary(p_false=0.4, until=25, seed=9),
        "crashes": CrashSchedule([
            Crash(0, 10, CrashPoint.AFTER_SEND),
            Crash(2, 17, CrashPoint.BEFORE_SEND),
        ]),
    }


def _cluster_factory(protocol_factory, env_factory):
    def spec_factory():
        env = env_factory()
        rcf = env.pop("rcf", 0)
        if protocol_factory is MajorityRSM:
            return ExperimentSpec(
                protocol=MajorityRSM(),
                world=ClusterWorld(n=7, rcf=rcf),
                environment=EnvironmentSpec(**env),
                workload=WorkloadSpec(rounds=45),
                metrics=MetricsSpec(metrics=("rounds", "total_broadcasts",
                                             "decided_instances")),
            )
        if protocol_factory is CheckpointCHA:
            protocol = CheckpointCHA(reducer=_count_reducer, initial_state=0)
        else:
            protocol = protocol_factory()
        return ExperimentSpec(
            protocol=protocol,
            world=ClusterWorld(n=7, rcf=rcf),
            environment=EnvironmentSpec(**env),
            workload=WorkloadSpec(instances=15),
            metrics=MetricsSpec(metrics=("rounds", "total_broadcasts"),
                                invariants=("all",)),
        )
    return spec_factory


@pytest.mark.parametrize("protocol_factory",
                         [CHA, CheckpointCHA, TwoPhaseCHA, NaiveRSM,
                          MajorityRSM],
                         ids=lambda f: f.__name__)
@pytest.mark.parametrize("env_name,env_factory", list(_environments()),
                         ids=[name for name, _ in _environments()])
def test_engines_byte_identical_per_family(protocol_factory, env_name,
                                           env_factory):
    spec_factory = _cluster_factory(protocol_factory, env_factory)
    anchor = _result_bytes(spec_factory, engine_ref=True,
                           sim_fast=False, channel_fast=False)
    for engine_ref, sim_fast, channel_fast in MODES:
        assert _result_bytes(
            spec_factory, engine_ref=engine_ref,
            sim_fast=sim_fast, channel_fast=channel_fast,
        ) == anchor, (engine_ref, sim_fast, channel_fast)


@pytest.mark.parametrize("history_ref", [False, True],
                         ids=["chain-history", "reference-history"])
def test_engines_byte_identical_with_history_switch(history_ref):
    """The engine switch composes with the history switch: all four
    corners of (engine, history) produce identical bytes."""
    def spec_factory():
        return ExperimentSpec(
            protocol=CHA(),
            world=ClusterWorld(n=6, rcf=20),
            environment=EnvironmentSpec(
                adversary=RandomLossAdversary(p_drop=0.25, p_false=0.2,
                                              seed=13)),
            workload=WorkloadSpec(instances=12),
            metrics=MetricsSpec(invariants=("all",)),
            use_reference_history=history_ref,
        )
    assert _result_bytes(spec_factory, engine_ref=False) == \
        _result_bytes(spec_factory, engine_ref=True)


def test_engines_byte_identical_under_fault_plan():
    """A compiled FaultPlan (crash wave + message storm + detector
    noise) must not distinguish the engines either."""
    def spec_factory():
        return ExperimentSpec(
            protocol=CHA(),
            world=ClusterWorld(n=8),
            workload=WorkloadSpec(instances=16),
            metrics=MetricsSpec(invariants=("all",)),
            faults=plan(
                CrashWave(fraction=0.25, horizon=20),
                MessageStorm(intensity=0.4, until=24),
                DetectorNoise(p_false=0.2, until=18),
                seed=77,
            ),
        )
    anchor = _result_bytes(spec_factory, engine_ref=True,
                           sim_fast=False, channel_fast=False)
    for engine_ref, sim_fast, channel_fast in MODES:
        assert _result_bytes(
            spec_factory, engine_ref=engine_ref,
            sim_fast=sim_fast, channel_fast=channel_fast,
        ) == anchor, (engine_ref, sim_fast, channel_fast)


def test_engines_byte_identical_vi_emulation():
    def spec_factory():
        sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(0.5, 0.0)))
        devices = tuple(
            DeviceSpec(mobility=Point(site.location.x + dx, 0.1 * (j + 1)))
            for site in sites
            for j, dx in enumerate((-0.1, 0.1))
        )
        return ExperimentSpec(
            protocol=VIEmulation(programs={0: CounterProgram(),
                                           1: CounterProgram()}),
            world=DeployedWorld(sites=sites, devices=devices),
            workload=WorkloadSpec(virtual_rounds=8),
            metrics=MetricsSpec(metrics=("availability", "emulation_gaps"),
                                invariants=("replica_consistency",)),
        )
    anchor = _result_bytes(spec_factory, engine_ref=True,
                           sim_fast=False, channel_fast=False)
    for engine_ref, sim_fast, channel_fast in MODES:
        assert _result_bytes(
            spec_factory, engine_ref=engine_ref,
            sim_fast=sim_fast, channel_fast=channel_fast,
        ) == anchor, (engine_ref, sim_fast, channel_fast)


def test_engines_byte_identical_under_mobility_dirty_set():
    """Mixed mobility: parked waypoint walkers (dirty-set skips), active
    roamers, a late joiner and a crash — the dirty-set position cache
    must be invisible in the trace bytes."""
    def build(engine_ref: bool) -> bytes:
        sim = Simulator(
            spec=RadioSpec(r1=1.0, r2=1.5, rcf=10),
            adversary=RandomLossAdversary(p_drop=0.25, seed=3),
            crashes=CrashSchedule.of({2: 25}),
            use_reference_engine=engine_ref,
        )

        class Chatter:
            def __init__(self, me): self.me = me
            def contend(self, r): return None
            def send(self, r, active):
                return ("chat", self.me, r) if (r + self.me) % 3 == 0 else None
            def deliver(self, r, messages, collision): pass

        for i in range(12):
            if i % 3 == 0:
                mobility = RandomWaypointMobility(
                    Point(i * 0.3 - 2.0, 0.0), arena=(-3, -3, 3, 3),
                    speed=0.15, seed=100 + i)
            elif i % 3 == 1:
                # Walks a short leg, then parks: the dirty-set's clean
                # case after a dirty prefix.
                mobility = WaypointMobility(
                    Point(i * 0.3 - 2.0, 0.0),
                    [Point(i * 0.3 - 2.0, 0.8)], speed=0.2)
            else:
                mobility = Point(i * 0.3 - 2.0, 0.1)
            sim.add_node(Chatter(i), mobility,
                         start_round=0 if i < 9 else 5)
        sim.run(40)
        return pickle.dumps(sim.trace)

    assert build(False) == build(True)


def test_reference_engine_env_switch(monkeypatch):
    spec = RadioSpec(r1=1.0, r2=1.5)
    monkeypatch.delenv("REPRO_REFERENCE_ENGINE", raising=False)
    assert not reference_engine_forced()
    assert not Simulator(spec=spec).use_reference_engine

    monkeypatch.setenv("REPRO_REFERENCE_ENGINE", "1")
    assert reference_engine_forced()
    assert Simulator(spec=spec).use_reference_engine
    # An explicit constructor argument still wins.
    assert not Simulator(spec=spec,
                         use_reference_engine=False).use_reference_engine

    monkeypatch.setenv("REPRO_REFERENCE_ENGINE", "0")
    assert not reference_engine_forced()


def test_spec_switch_reaches_simulator():
    """ExperimentSpec.use_reference_engine pins the built simulator."""
    seen = []
    spec = ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=3),
        workload=WorkloadSpec(instances=2),
        use_reference_engine=True,
    )
    run(spec, instrument=lambda sim: seen.append(sim.use_reference_engine))
    assert seen == [True]

    seen.clear()
    run(spec.override(use_reference_engine=False),
        instrument=lambda sim: seen.append(sim.use_reference_engine))
    assert seen == [False]
