"""Unit tests for workload generators."""

import pytest

from repro.net import CrashPoint
from repro.workloads import (
    periodic_client_script,
    poisson_client_script,
    random_crash_schedule,
    storm_adversary,
)


class TestCrashSchedules:
    def test_fraction_respected(self):
        cs = random_crash_schedule(10, fraction=0.4, horizon=100, seed=1)
        assert len(cs) == 4

    def test_spare_nodes_never_crash(self):
        cs = random_crash_schedule(6, fraction=1.0, horizon=50, seed=2,
                                   spare=frozenset({0}))
        assert all(crash.node != 0 for crash in cs)

    def test_deterministic(self):
        a = random_crash_schedule(8, fraction=0.5, horizon=40, seed=3)
        b = random_crash_schedule(8, fraction=0.5, horizon=40, seed=3)
        assert {(c.node, c.round, c.point) for c in a} == \
               {(c.node, c.round, c.point) for c in b}

    def test_after_send_crashes_present(self):
        cs = random_crash_schedule(40, fraction=1.0, horizon=100, seed=4,
                                   after_send_fraction=0.5)
        points = [c.point for c in cs]
        assert CrashPoint.AFTER_SEND in points
        assert CrashPoint.BEFORE_SEND in points

    def test_rounds_within_horizon(self):
        cs = random_crash_schedule(10, fraction=1.0, horizon=30, seed=5)
        assert all(1 <= c.round < 30 for c in cs)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            random_crash_schedule(5, fraction=1.5, horizon=10, seed=0)


class TestStormAdversary:
    def test_zero_intensity_is_lossless(self):
        adv = storm_adversary(intensity=0.0, seed=1)
        assert adv.drops(0, {0: ()}) == {}
        assert not adv.false_collision(0, 0)

    def test_full_intensity_rates(self):
        adv = storm_adversary(intensity=1.0, seed=1)
        assert adv._p_drop == pytest.approx(0.7)

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            storm_adversary(intensity=-0.1, seed=0)


class TestClientScripts:
    def test_periodic_script(self):
        script = periodic_client_script(
            period=3, rounds=10, make_payload=lambda i: ("add", i),
        )
        assert script == {0: ("add", 0), 3: ("add", 1),
                          6: ("add", 2), 9: ("add", 3)}

    def test_periodic_offset(self):
        script = periodic_client_script(
            period=4, rounds=9, make_payload=lambda i: i, offset=1,
        )
        assert script == {1: 0, 5: 1}

    def test_poisson_deterministic(self):
        kwargs = dict(rate=0.3, rounds=50, make_payload=lambda i: i, seed=9)
        assert poisson_client_script(**kwargs) == poisson_client_script(**kwargs)

    def test_poisson_rate_zero_empty(self):
        assert poisson_client_script(rate=0.0, rounds=20,
                                     make_payload=lambda i: i, seed=0) == {}

    def test_poisson_rate_one_full(self):
        script = poisson_client_script(rate=1.0, rounds=10,
                                       make_payload=lambda i: i, seed=0)
        assert sorted(script) == list(range(10))

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            periodic_client_script(period=0, rounds=5, make_payload=lambda i: i)


class TestScenarios:
    def test_single_region_geometry(self):
        from repro.workloads import single_region
        sites, devices = single_region(4)
        assert len(sites) == 1 and len(devices) == 4
        assert all(sites[0].location.within(d, 0.25) for d in devices)

    def test_vn_line_within_virtual_range(self):
        from repro.workloads import vn_line
        sites, devices = vn_line(4, spacing=0.5, replicas_per_vn=2)
        assert len(sites) == 4 and len(devices) == 8
        for a, b in zip(sites, sites[1:]):
            assert a.location.distance_to(b.location) == pytest.approx(0.5)

    def test_vn_grid_counts(self):
        from repro.workloads import vn_grid
        sites, devices = vn_grid(2, 3, replicas_per_vn=2)
        assert len(sites) == 6 and len(devices) == 12

    def test_devices_in_region(self):
        from repro.workloads import vn_grid
        sites, devices = vn_grid(2, 2, replicas_per_vn=3)
        for i, site in enumerate(sites):
            mine = devices[3 * i: 3 * i + 3]
            assert all(site.location.within(d, 0.25) for d in mine)

    def test_roaming_devices_deterministic(self):
        from repro.workloads import roaming_devices
        a = roaming_devices(3, arena=(0, 0, 10, 10), speed=0.5, seed=7)
        b = roaming_devices(3, arena=(0, 0, 10, 10), speed=0.5, seed=7)
        for ma, mb in zip(a, b):
            assert [ma.position_at(r) for r in range(20)] == \
                   [mb.position_at(r) for r in range(20)]
