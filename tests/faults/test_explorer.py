"""The schedule explorer: plans x seeds x protocols, spec-checked."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.explorer import PROTOCOLS as PROTOCOL_FACTORIES
from repro.faults.explorer import liveness_deadline
from repro.faults import (
    CrashWave,
    DetectorNoise,
    MessageStorm,
    Partition,
    PROTOCOLS,
    SOUND_PROTOCOLS,
    default_instances,
    explore,
    plan,
    run_case,
    run_case_detailed,
)

MODERATE = plan(MessageStorm(intensity=0.35, until=24),
                CrashWave(fraction=0.25, horizon=18))


class TestRunCase:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            run_case("paxos", MODERATE, n=4, instances=10)

    def test_sound_protocol_returns_none(self):
        assert run_case("cha", MODERATE.with_seed(1), n=4, instances=20) is None

    def test_detailed_case_carries_verdicts(self):
        case = run_case_detailed("cha", MODERATE.with_seed(1), n=4,
                                 instances=20)
        assert case.verdicts["agreement"] == "ok"
        assert case.verdicts["validity"] == "ok"
        assert not case.failed

    def test_registry_covers_at_least_four_protocols(self):
        assert len(PROTOCOLS) >= 4
        assert set(SOUND_PROTOCOLS) <= set(PROTOCOLS)


class TestDefaultInstances:
    def test_outlasts_the_hostile_window(self):
        budget = default_instances(plan(Partition(until=60)))
        assert budget * 3 > 60  # rounds comfortably past stabilisation

    def test_unbounded_plans_get_the_base_budget(self):
        assert default_instances(plan(MessageStorm(until=None))) == \
            default_instances(plan())


class TestLivenessIsChecked:
    """The explorer must demand convergence, not just safety — a
    protocol that stalls forever after stabilisation is a failure."""

    def test_cluster_specs_arm_the_liveness_invariant(self):
        p = MODERATE
        spec = PROTOCOL_FACTORIES["cha"](p, 4, default_instances(p))
        assert spec.metrics.liveness_by is not None
        assert spec.metrics.liveness_by * 3 > p.stabilization_round()

    def test_vi_specs_arm_the_liveness_invariant(self):
        spec = PROTOCOL_FACTORIES["vi"](MODERATE, 4, 12)
        assert "liveness" in spec.metrics.invariants
        assert spec.metrics.liveness_by == 9

    def test_deadline_uses_the_protocol_cadence(self):
        p = plan(Partition(until=30))
        assert liveness_deadline(p, 40, rpi=3) == 13
        assert liveness_deadline(p, 40, rpi=2) == 18

    def test_deadline_none_when_plan_never_stabilises(self):
        assert liveness_deadline(plan(MessageStorm(until=None)), 40) is None

    def test_deadline_none_when_workload_too_short(self):
        assert liveness_deadline(plan(Partition(until=60)), 10) is None


@pytest.mark.fast
class TestExplore:
    def test_case_grid_shape_and_order(self):
        report = explore([MODERATE], protocols=("cha", "naive-rsm"),
                         seeds=(0, 1), n=4, instances=16)
        assert len(report.cases) == 4
        assert [c.protocol for c in report.cases] == \
            ["cha", "naive-rsm", "cha", "naive-rsm"]
        assert [c.plan.seed for c in report.cases] == [0, 0, 1, 1]

    def test_sound_protocols_survive_everything(self):
        report = explore(
            [MODERATE,
             plan(Partition(until=18), DetectorNoise(p_false=0.3, until=24))],
            protocols=("cha", "checkpoint-cha", "naive-rsm"),
            seeds=(0, 1), n=5,
        )
        assert not report.failures, report.summary()
        assert not report.unsound_failures

    def test_two_phase_ablation_is_caught(self):
        """The explorer's reason to exist: the unsafe ablation is found."""
        report = explore(
            [plan(DetectorNoise(p_false=0.35, until=40),
                  CrashWave(fraction=0.4, horizon=40,
                            after_send_fraction=0.5))],
            protocols=("two-phase-cha",), seeds=range(6), n=8, instances=40,
        )
        assert report.failures
        assert not report.unsound_failures  # two-phase is expected-unsound
        assert "two-phase-cha" in report.summary()

    def test_vi_emulation_runs_under_plans(self):
        report = explore([MODERATE], protocols=("vi",), seeds=(0,), n=4,
                         instances=10)
        (case,) = report.cases
        assert case.verdicts == {"replica_consistency": "ok",
                                 "liveness": "ok"}
