"""Shrinking failing fault plans down to pinned pytest reproducers.

The end-to-end demo uses the repository's deliberately unsafe ablation
(two-phase CHA, the veto-2-less protocol) as the injected bug: the
explorer finds a violating seeded plan, the shrinker minimises it to a
handful of nodes and rounds, and the emitted reproducer runs as a
self-contained pytest test.
"""

import pytest

from repro.baselines.two_phase_cha import TWO_PHASE_ROUNDS
from repro.faults import (
    CrashWave,
    DetectorNoise,
    explore,
    plan,
    reproducer_source,
    run_case_detailed,
    shrink_case,
    write_reproducer,
)

INJECTED_BUG_PLAN = plan(
    DetectorNoise(p_false=0.35, until=40),
    CrashWave(fraction=0.4, horizon=40, after_send_fraction=0.5),
)


@pytest.fixture(scope="module")
def failing_case():
    report = explore([INJECTED_BUG_PLAN], protocols=("two-phase-cha",),
                     seeds=range(6), n=8, instances=40)
    assert report.failures, "expected the unsafe ablation to fail"
    return report.failures[0]


@pytest.fixture(scope="module")
def shrunk(failing_case):
    return shrink_case(failing_case)


class TestShrinker:
    def test_demo_reaches_a_tiny_configuration(self, failing_case, shrunk):
        """Acceptance demo: <= 5 nodes and <= 60 rounds from an 8-node,
        80-round failing start."""
        assert shrunk.case.failure is not None
        assert shrunk.case.n <= 5
        assert shrunk.case.instances * TWO_PHASE_ROUNDS <= 60
        assert shrunk.case.n <= failing_case.n
        assert shrunk.case.instances <= failing_case.instances

    def test_shrunk_case_still_fails_on_rerun(self, shrunk):
        rerun = run_case_detailed(
            shrunk.case.protocol, shrunk.case.plan,
            n=shrunk.case.n, instances=shrunk.case.instances,
        )
        assert rerun.failure is not None

    def test_shrinking_is_deterministic(self, failing_case, shrunk):
        again = shrink_case(failing_case)
        assert again.case == shrunk.case
        assert again.attempts == shrunk.attempts

    def test_passing_case_rejected(self):
        ok = run_case_detailed("cha", plan(), n=3, instances=5)
        with pytest.raises(ValueError):
            shrink_case(ok)


class TestReproducerEmission:
    def test_source_is_a_runnable_failing_test(self, shrunk):
        source = reproducer_source(shrunk)
        namespace = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        # The generated test asserts the violation still fires; it must
        # pass (i.e. the plan still reproduces the bug).
        namespace["test_fault_reproducer"]()

    def test_source_pins_the_exact_configuration(self, shrunk):
        source = reproducer_source(shrunk)
        assert repr(shrunk.case.plan) in source
        assert f"n={shrunk.case.n}" in source
        assert repr(shrunk.case.protocol) in source

    def test_write_reproducer_collected_by_pytest(self, shrunk, tmp_path):
        path = tmp_path / "test_shrunk_reproducer.py"
        write_reproducer(shrunk, str(path))
        text = path.read_text()
        assert text.startswith('"""Auto-generated')
        assert "def test_fault_reproducer" in text

    def test_passing_case_cannot_be_emitted(self):
        ok = run_case_detailed("cha", plan(), n=3, instances=5)
        with pytest.raises(ValueError):
            reproducer_source(ok)
