"""Compilation of fault plans into environment components and specs."""

import dataclasses

import pytest

import repro
from repro.contention import LeaderElectionCM
from repro.detectors import EventuallyAccurateDetector, PerfectDetector
from repro.errors import ConfigurationError
from repro.faults import (
    CrashWave,
    DetectorNoise,
    MessageStorm,
    MobilityChurn,
    Partition,
    apply_faults,
    materialize,
    plan,
)
from repro.net import ComposedAdversary, Message, ScriptedAdversary


def drops_trace(adversary, rounds=20):
    t = {1: (Message(0, "a"), Message(2, "b")), 3: (Message(0, "a"),)}
    return [adversary.drops(r, t) for r in range(rounds)]


class TestMaterialize:
    def test_deterministic(self):
        p = plan(MessageStorm(intensity=0.6, until=15),
                 CrashWave(fraction=0.5, horizon=10), seed=5)
        a, b = materialize(p, n=6), materialize(p, n=6)
        assert drops_trace(a.adversary) == drops_trace(b.adversary)
        assert tuple(a.crashes) == tuple(b.crashes)

    def test_primitives_draw_independent_subseeds(self):
        """Removing, prepending, or weakening a sibling primitive must
        not perturb another primitive's output — the invariant the
        shrinker's drop-a-primitive step relies on."""
        wave = CrashWave(fraction=0.5, horizon=10)
        alone = materialize(plan(wave, seed=5), n=6)
        trailing = materialize(plan(wave, MessageStorm(until=15), seed=5), n=6)
        # The storm *preceding* the wave shifts the wave's position but
        # must not shift its seed.
        leading = materialize(plan(MessageStorm(until=15), wave, seed=5), n=6)
        weakened = materialize(
            plan(MessageStorm(intensity=0.1, until=15), wave, seed=5), n=6)
        assert tuple(alone.crashes) == tuple(trailing.crashes) \
            == tuple(leading.crashes) == tuple(weakened.crashes)

    def test_equal_twin_primitives_draw_distinct_subseeds(self):
        wave = CrashWave(fraction=0.5, horizon=10, spare=frozenset())
        mat = materialize(plan(wave, wave, seed=5), n=12)
        rounds = {c.node: c.round for c in mat.crashes}
        # Twins crash different victims/rounds: the occurrence counter
        # separates identical primitives.
        assert len(rounds) > len(materialize(plan(wave, seed=5), n=12).crashes)

    def test_duplicate_crash_victims_keep_earliest(self):
        p = plan(CrashWave(fraction=1.0, horizon=10),
                 CrashWave(fraction=1.0, horizon=10), seed=1)
        mat = materialize(p, n=4)
        # CrashSchedule would have raised on duplicates; one crash each.
        assert len(mat.crashes) == 3  # node 0 spared by default

    def test_requirements_forwarded(self):
        mat = materialize(plan(Partition(until=22),
                               DetectorNoise(p_false=0.2, until=31)), n=4)
        assert (mat.rcf, mat.racc) == (22, 31)

    def test_empty_plan_is_benign(self):
        mat = materialize(plan(), n=4)
        assert mat.adversary is None and mat.crashes is None
        assert mat.mobility == ()


def cluster_spec(**kwargs):
    defaults = dict(
        protocol=repro.CHA(),
        world=repro.ClusterWorld(n=5),
        workload=repro.WorkloadSpec(instances=20),
    )
    defaults.update(kwargs)
    return repro.ExperimentSpec(**defaults)


class TestApplyFaults:
    PLAN = plan(MessageStorm(intensity=0.4, until=24),
                DetectorNoise(p_false=0.2, until=30),
                CrashWave(fraction=0.3, horizon=15), seed=2)

    def test_noop_without_plan(self):
        spec = cluster_spec()
        assert apply_faults(spec) is spec

    def test_cluster_world_rcf_raised(self):
        spec = apply_faults(cluster_spec(faults=self.PLAN))
        assert spec.world.rcf == 24

    def test_detector_defaults_to_plan_racc(self):
        spec = apply_faults(cluster_spec(faults=self.PLAN))
        assert isinstance(spec.environment.detector,
                          EventuallyAccurateDetector)
        assert spec.environment.detector.racc == 30

    def test_explicit_detector_kept(self):
        spec = cluster_spec(
            faults=self.PLAN,
            environment=repro.EnvironmentSpec(detector=PerfectDetector()),
        )
        assert isinstance(apply_faults(spec).environment.detector,
                          PerfectDetector)

    def test_default_cm_stabilises_with_the_plan(self):
        cm = apply_faults(cluster_spec(faults=self.PLAN)).environment.cm
        assert isinstance(cm, LeaderElectionCM)
        assert cm.stable_round == 30
        assert cm.chaos == "random"

    def test_explicit_adversary_composes(self):
        scripted = ScriptedAdversary(drop_script={(0, 1): "all"})
        spec = cluster_spec(
            faults=self.PLAN,
            environment=repro.EnvironmentSpec(adversary=scripted),
        )
        adv = apply_faults(spec).environment.adversary
        assert isinstance(adv, ComposedAdversary)
        assert scripted in adv.parts

    def test_crash_conflict_rejected(self):
        from repro.net import Crash, CrashSchedule

        spec = cluster_spec(
            faults=self.PLAN,
            environment=repro.EnvironmentSpec(
                crashes=CrashSchedule([Crash(1, 3)]),
            ),
        )
        with pytest.raises(ConfigurationError):
            apply_faults(spec)

    def test_application_is_idempotent(self):
        once = apply_faults(cluster_spec(faults=self.PLAN))
        assert once.faults is None
        assert apply_faults(once) is once

    def test_three_phase_commit_rejects_faults(self):
        spec = repro.ExperimentSpec(
            protocol=repro.ThreePhaseCommit(votes=(True, True)),
            faults=self.PLAN,
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_deployed_world_gets_churn_devices(self):
        from repro.vi.program import CounterProgram
        from repro.workloads import single_region

        sites, positions = single_region(3)
        spec = repro.ExperimentSpec(
            protocol=repro.VIEmulation(programs={0: CounterProgram()}),
            world=repro.DeployedWorld(
                sites=tuple(sites),
                devices=tuple(repro.DeviceSpec(mobility=p) for p in positions),
            ),
            workload=repro.WorkloadSpec(virtual_rounds=6),
            faults=plan(MobilityChurn(count=2), Partition(until=9), seed=1),
        )
        applied = apply_faults(spec)
        assert len(applied.world.devices) == 5
        assert applied.world.rcf == 9
        assert applied.world.cm_stable_round == 9

    def test_run_applies_the_plan(self):
        result = repro.run(cluster_spec(
            faults=self.PLAN,
            metrics=repro.MetricsSpec(invariants=("all",)),
        ))
        assert result.ok(), result.invariants
        assert result.spec.faults is None
        assert result.spec.environment.adversary is not None

    def test_builder_attaches_plan(self):
        spec = (repro.scenario().nodes(4).instances(10).cha()
                .faults(self.PLAN, seed=8).build())
        assert spec.faults.seed == 8
