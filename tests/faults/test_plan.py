"""Unit tests for fault-plan primitives and plan composition."""

import pickle

import pytest

import repro.faults
from repro.faults import (
    NEVER,
    CrashWave,
    DetectorNoise,
    FaultPlan,
    MessageStorm,
    MobilityChurn,
    Partition,
    SenderSuppression,
    plan,
    subseed,
)
from repro.net import CrashPoint

ALL_PRIMITIVES = plan(
    CrashWave(fraction=0.4, horizon=25),
    Partition(until=30, n_groups=2),
    MessageStorm(intensity=0.5, detector_noise=0.1, until=35),
    SenderSuppression(senders=(1, 2), until=20),
    DetectorNoise(p_false=0.3, until=40),
    MobilityChurn(count=2),
    seed=9,
)


class TestPlanAlgebra:
    def test_pipe_appends_primitive(self):
        p = plan(MessageStorm()) | CrashWave()
        assert len(p.primitives) == 2
        assert isinstance(p.primitives[1], CrashWave)

    def test_pipe_unions_plans(self):
        p = plan(MessageStorm(), seed=1) | plan(CrashWave(), seed=2)
        assert len(p.primitives) == 2
        assert p.seed == 1  # left seed wins

    def test_with_seed(self):
        assert plan(CrashWave()).with_seed(7).seed == 7

    def test_non_primitive_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(primitives=("storm",))


class TestRequirements:
    def test_rcf_is_max_over_drop_windows(self):
        assert ALL_PRIMITIVES.rcf_requirement() == 35

    def test_racc_is_max_over_noise_windows(self):
        assert ALL_PRIMITIVES.racc_requirement() == 40

    def test_stabilization_round(self):
        assert ALL_PRIMITIVES.stabilization_round() == 40

    def test_crashes_and_churn_need_no_stabilisation(self):
        p = plan(CrashWave(), MobilityChurn())
        assert p.stabilization_round() == 0

    def test_unbounded_storm_never_stabilises(self):
        p = plan(MessageStorm(until=None))
        assert p.rcf_requirement() == NEVER


class TestReprRoundTrip:
    def test_every_primitive_repr_is_evalable(self):
        clone = eval(repr(ALL_PRIMITIVES), vars(repro.faults))
        assert clone == ALL_PRIMITIVES

    def test_plans_pickle(self):
        assert pickle.loads(pickle.dumps(ALL_PRIMITIVES)) == ALL_PRIMITIVES


class TestCrashWave:
    def test_seeded_and_deterministic(self):
        wave = CrashWave(fraction=0.5, horizon=30)
        assert wave.crashes(8, 3) == wave.crashes(8, 3)
        assert wave.crashes(8, 3) != wave.crashes(8, 4)

    def test_spare_nodes_survive(self):
        wave = CrashWave(fraction=1.0, horizon=30, spare=frozenset({0, 1}))
        assert all(c.node not in (0, 1) for c in wave.crashes(6, 5))

    def test_after_send_crashes_present(self):
        wave = CrashWave(fraction=1.0, horizon=50, after_send_fraction=0.5)
        points = {c.point for c in wave.crashes(30, 2)}
        assert points == {CrashPoint.BEFORE_SEND, CrashPoint.AFTER_SEND}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            CrashWave(fraction=1.2)


class TestPartition:
    def test_scripted_groups_respected(self):
        adv = Partition(until=10, groups=((0, 1), (2,))).adversary(3, 0)
        from repro.net import Message
        t = {0: (Message(2, "x"),)}
        assert adv.drops(5, t) == {0: frozenset({2})}

    def test_random_groups_cover_all_nodes(self):
        adv = Partition(until=10, n_groups=3).adversary(9, 4)
        # All 9 nodes belong to some group (none dropped from the split).
        assert sorted(adv._group_of) == list(range(9))
        assert len(set(adv._group_of.values())) == 3

    def test_single_group_rejected(self):
        with pytest.raises(ValueError):
            Partition(n_groups=1)


class TestShrinkVariants:
    @pytest.mark.parametrize("primitive", ALL_PRIMITIVES.primitives,
                             ids=lambda p: type(p).__name__)
    def test_variants_are_strictly_different(self, primitive):
        variants = list(primitive.shrink_variants())
        assert variants, "default-sized primitives must be shrinkable"
        assert all(v != primitive for v in variants)

    def test_shrinking_terminates(self):
        # Repeatedly taking the first variant must bottom out.
        current = MessageStorm(intensity=0.9, detector_noise=0.8, until=100)
        for _ in range(100):
            variants = list(current.shrink_variants())
            if not variants:
                break
            current = variants[0]
        else:
            pytest.fail("shrink_variants never reached a fixpoint")


class TestSubseed:
    def test_stable_and_distinct(self):
        assert subseed(3, 0, 1) == subseed(3, 0, 1)
        assert subseed(3, 0, 1) != subseed(3, 1, 1)
        assert subseed(3, 0, 1) != subseed(4, 0, 1)
