"""Tests for checkpoint-CHA (Section 3.5): folding, GC, bounded space."""

import pytest

from repro.contention import LeaderElectionCM
from repro.core import CheckpointCHAProcess, run_cha
from repro.core.checkpoint import CheckpointChaCore, CheckpointOutput
from repro.detectors import EventuallyAccurateDetector
from repro.net import RandomLossAdversary
from repro.types import BOTTOM, Color


def tuple_reducer(state, k, value):
    """State is the tuple of decided (instance, value) pairs: the state
    *is* the folded history, which lets tests check agreement by prefix."""
    if value is BOTTOM:
        return state
    return state + ((k, value),)


def make_core(values=None):
    values = values or {}
    return CheckpointChaCore(
        propose=lambda k: values.get(k, f"v{k}"),
        reducer=tuple_reducer,
        initial_state=(),
    )


def run_instance(core, *, clean=True, veto2_collision=False):
    own = core.begin_instance()
    core.on_ballot_reception([own.ballot], collision=not clean)
    core.on_veto1_reception(False, not clean and False)
    return core.on_veto2_reception(False, veto2_collision)


class TestCoreFolding:
    def test_green_instance_folds_and_outputs_checkpoint(self):
        core = make_core()
        k, out = run_instance(core)
        assert isinstance(out, CheckpointOutput)
        assert out.checkpoint_instance == 1
        assert out.checkpoint_state == ((1, "v1"),)
        assert len(out.suffix) == 0

    def test_yellow_instance_outputs_bottom_and_keeps_state(self):
        core = make_core()
        run_instance(core)
        k, out = run_instance(core, veto2_collision=True)
        assert out is BOTTOM
        assert core.checkpoint_instance == 1
        # The yellow instance's entries are retained (no GC below green).
        assert 2 in core.status

    def test_gc_discards_entries_below_checkpoint(self):
        core = make_core()
        for _ in range(10):
            run_instance(core)
        # Only the anchor instance's entries survive.
        assert set(core.ballots) == {10}
        assert set(core.status) == {10}
        assert core.checkpoint_instance == 10

    def test_space_bounded_in_stable_run(self):
        core = make_core()
        residents = []
        for _ in range(50):
            run_instance(core)
            residents.append(core.resident_entries())
        assert max(residents) <= 4

    def test_space_grows_without_green(self):
        core = make_core()
        for _ in range(20):
            run_instance(core, veto2_collision=True)  # all yellow
        assert core.resident_entries() >= 20

    def test_checkpoint_output_includes(self):
        core = make_core()
        run_instance(core)
        run_instance(core)
        out = core.current_checkpoint_output()
        assert out.includes(1) and out.includes(2)
        assert not out.includes(3)

    def test_fold_skips_bottom_instances(self):
        core = make_core()
        run_instance(core)
        # Orange instance: bad, not folded, then a green one folds over it.
        own = core.begin_instance()
        core.on_ballot_reception([own.ballot], collision=False)
        core.on_veto1_reception(True, False)
        core.on_veto2_reception(True, False)
        run_instance(core)
        assert core.checkpoint_state == ((1, "v1"), (3, "v3"))


class TestEnsemble:
    def make_factory(self):
        def factory(*, propose, cm_name):
            return CheckpointCHAProcess(
                propose=propose, cm_name=cm_name,
                reducer=tuple_reducer, initial_state=(),
            )
        return factory

    def test_checkpoint_states_agree_across_nodes(self):
        run = run_cha(n=4, instances=15, process_factory=self.make_factory())
        finals = set()
        for proc in run.processes.values():
            cp = proc.checkpoint
            finals.add((cp.checkpoint_instance, cp.checkpoint_state))
        assert len(finals) == 1

    def test_checkpoint_states_prefix_consistent_under_adversity(self):
        run = run_cha(
            n=4, instances=40,
            process_factory=self.make_factory(),
            adversary=RandomLossAdversary(p_drop=0.4, p_false=0.2, seed=11),
            detector=EventuallyAccurateDetector(racc=75),
            cm=LeaderElectionCM(stable_round=75, chaos="random", seed=11),
            rcf=75,
        )
        # With the tuple reducer the checkpoint state is the decided
        # history: all states must be prefix-ordered.
        states = sorted(
            (proc.checkpoint.checkpoint_state for proc in run.processes.values()),
            key=len,
        )
        for a, b in zip(states, states[1:]):
            assert b[:len(a)] == a

    def test_space_advantage_over_plain_cha(self):
        plain = run_cha(n=3, instances=60)
        gc = run_cha(n=3, instances=60, process_factory=self.make_factory())
        plain_resident = plain.processes[0].core.resident_entries()
        gc_resident = gc.processes[0].core.resident_entries()
        assert gc_resident < plain_resident
        assert plain_resident >= 120  # grows linearly: ballots + status
        assert gc_resident <= 4       # bounded

    def test_outputs_are_checkpoint_outputs(self):
        run = run_cha(n=2, instances=3, process_factory=self.make_factory())
        for _, out in run.outputs[0]:
            assert out is BOTTOM or isinstance(out, CheckpointOutput)


class TestFoldCallCounts:
    """Fold-count regression (ISSUE 5 satellite): exactly one chain fold
    per green instance, and the cache-invalidation paths (fold / restore
    / reset) keep folding correct without extra re-folds.  Mirrors PR
    4's zero-``History.__init__`` pin for the plain engine."""

    @staticmethod
    def _count_folds(monkeypatch, counter=None):
        counter = counter if counter is not None else {"calls": 0}
        seed = CheckpointChaCore._compute_history

        def counting(self):
            counter["calls"] += 1
            return seed(self)

        monkeypatch.setattr(CheckpointChaCore, "_compute_history", counting)
        return counter

    def test_green_instance_costs_exactly_one_fold(self, monkeypatch):
        core = make_core()
        counter = self._count_folds(monkeypatch)
        for i in range(1, 9):
            run_instance(core)
            # One fold serves _fold_to AND the (checkpoint, suffix)
            # output; the seed path paid two.
            assert counter["calls"] == i

    def test_non_green_instances_fold_nothing(self, monkeypatch):
        core = make_core()
        counter = self._count_folds(monkeypatch)
        run_instance(core, clean=False)           # red: bottom output
        run_instance(core, veto2_collision=True)  # yellow: bottom output
        assert counter["calls"] == 0

    def test_restore_and_reset_invalidate_without_refolding(self, monkeypatch):
        donor = make_core()
        for _ in range(4):
            run_instance(donor)
        snapshot = donor.snapshot()

        joiner = make_core()
        counter = self._count_folds(monkeypatch)
        joiner.restore(snapshot)
        assert counter["calls"] == 0      # restore itself never folds
        assert joiner._fold_cache == {}   # ... but drops stale chains
        k, out = run_instance(joiner)
        assert counter["calls"] == 1      # next green folds exactly once
        assert out.checkpoint_state == donor.checkpoint_state + ((k, f"v{k}"),)

        joiner.reset_to(10, ())
        assert joiner._fold_cache == {}
        counter["calls"] = 0
        k, out = run_instance(joiner)
        assert (k, counter["calls"]) == (11, 1)
        assert out.checkpoint_instance == 11 and out.suffix.length == 11

    def test_standalone_checkpoint_output_folds_once(self, monkeypatch):
        core = make_core()
        for _ in range(3):
            run_instance(core)
        counter = self._count_folds(monkeypatch)
        out = core.current_checkpoint_output()
        assert counter["calls"] == 1
        assert out.checkpoint_instance == 3
