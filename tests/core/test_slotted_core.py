"""Unit and regression tests for the slotted protocol core (PR 7).

Three concerns live here:

* **View semantics** — ``SlottedChaCore.status`` / ``.ballots`` are live
  writable mappings over the parallel arrays and must behave exactly
  like the reference core's dicts (tests and tools mutate protocol
  state through them).
* **Pre-instance inertness** — the mid-grid power-up bugfix: a process
  whose first simulated round lands on a veto phase used to crash with
  ``KeyError: 0``; now veto phases before the first ``begin_instance``
  send nothing and receive nothing, in both cores, end to end through
  ``Simulator.add_node(start_round=...)``.
* **Instance-scoped vetoes** — the same-tag grid-shift bugfix: a veto
  payload for a *different* instance (stale, or from a same-tag
  ensemble on a shifted grid) must not demote this instance.
"""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.two_phase_cha import TwoPhaseChaProcess
from repro.contention import LeaderElectionCM
from repro.core import ChaCore, CheckpointChaCore, check_agreement, check_validity
from repro.core.ballot import Ballot, BallotPayload, VetoPayload
from repro.core.cha import CHAProcess
from repro.core.checkpoint import CheckpointCHAProcess
from repro.core.history import new_chain_generation
from repro.core.runner import cluster_positions, default_proposer
from repro.core.slotted import SlottedChaCore, SlottedCheckpointChaCore
from repro.net import Simulator
from repro.net.channel import RadioSpec
from repro.net.messages import Message, RoundBatch
from repro.types import BOTTOM, Color

pytestmark = pytest.mark.fast

BOTH_CORES = [True, False]


def _core(core_ref: bool, **kwargs):
    cls = ChaCore if core_ref else SlottedChaCore
    return cls(propose=lambda k: f"v{k}", **kwargs)


def _drive_instance(core, *, ballot: Ballot | None = None,
                    veto1: bool = False, veto2: bool = False):
    """One full instance: ballot reception, then both veto receptions."""
    payload = core.begin_instance()
    received = ballot if ballot is not None else payload.ballot
    core.on_ballot_reception([received], False)
    core.on_veto1_reception(veto1, False)
    return core.on_veto2_reception(veto2, False)


# ----------------------------------------------------------------------
# View semantics
# ----------------------------------------------------------------------


class TestStatusView:
    def test_mapping_protocol(self):
        core = _core(False)
        core.status[3] = Color.RED
        core.status[1] = Color.GREEN
        assert core.status[3] is Color.RED
        assert len(core.status) == 2
        assert list(core.status) == [1, 3]  # ascending instances
        assert core.status == {1: Color.GREEN, 3: Color.RED}
        assert core.status.get(2) is None
        with pytest.raises(KeyError):
            core.status[2]
        del core.status[3]
        assert core.status == {1: Color.GREEN}

    def test_setter_replaces_contents(self):
        core = _core(False)
        core.status[5] = Color.ORANGE
        core.status = {2: Color.YELLOW}
        assert core.status == {2: Color.YELLOW}

    def test_color_of_defaults_green(self):
        core = _core(False)
        assert core.color_of(7) is Color.GREEN
        core.status[7] = Color.ORANGE
        assert core.color_of(7) is Color.ORANGE


class TestBallotView:
    def test_mapping_protocol(self):
        core = _core(False)
        b = Ballot("x", 0)
        core.ballots[2] = b
        assert core.ballots[2] is b  # the stored object is retained
        assert core.ballots == {2: b}
        del core.ballots[2]
        assert core.ballots == {}
        with pytest.raises(KeyError):
            core.ballots[2]

    def test_materialises_equal_ballots(self):
        """After a wire reception the view rebuilds an equal Ballot."""
        core = _core(False)
        _drive_instance(core)
        assert core.ballots[1] == Ballot("v1", 0)

    def test_resident_entries_matches_reference(self):
        ref, slot = _core(True), _core(False)
        for core in (ref, slot):
            _drive_instance(core)
            _drive_instance(core, veto1=True)   # orange: ballot kept
            core.begin_instance()
            core.on_ballot_reception([], False)  # red: no ballot stored
        assert slot.resident_entries() == ref.resident_entries()


# ----------------------------------------------------------------------
# Snapshot interop between the two cores
# ----------------------------------------------------------------------


class TestSnapshotInterop:
    @pytest.mark.parametrize("src_ref,dst_ref", [(True, False), (False, True)])
    def test_snapshot_restores_across_cores(self, src_ref, dst_ref):
        src = _core(src_ref)
        _drive_instance(src)
        _drive_instance(src, veto2=True)  # yellow
        snap = src.snapshot()
        dst = _core(dst_ref)
        dst.restore(snap)
        assert dst.snapshot() == snap
        assert dst.current_history() == src.current_history()
        # Both continue identically from the adopted state (outputs
        # produced before the snapshot stay with the source).
        assert _drive_instance(dst) == _drive_instance(src)
        assert dst.outputs == src.outputs[-1:]

    def test_snapshots_pickle_identically(self):
        ref, slot = _core(True), _core(False)
        for core in (ref, slot):
            _drive_instance(core)
            _drive_instance(core, veto1=True)
        assert pickle.dumps(slot.snapshot()) == pickle.dumps(ref.snapshot())


# ----------------------------------------------------------------------
# Pre-instance inertness (the mid-grid power-up bugfix)
# ----------------------------------------------------------------------


class TestPreInstanceInertness:
    @pytest.mark.parametrize("core_ref", BOTH_CORES)
    def test_fresh_core_wants_no_veto(self, core_ref):
        core = _core(core_ref)
        assert not core.has_instance()
        assert not core.wants_veto1()
        assert not core.wants_veto2()
        assert core.veto1_payload() is None
        assert core.veto2_payload() is None

    @pytest.mark.parametrize("core_ref", BOTH_CORES)
    @pytest.mark.parametrize("start_round", [1, 2])
    def test_cha_process_survives_pre_instance_rounds(self, core_ref,
                                                      start_round):
        """The exact reported repro: round 0 lands on a veto phase."""
        proc = CHAProcess(propose=lambda k: k, start_round=start_round,
                          use_reference_core=core_ref)
        assert proc.send(0, False) is None
        assert proc.send(0, True) is None
        stray = Message(1, VetoPayload("cha", 3, 1))
        proc.deliver(0, (stray,), False)
        proc.deliver_batch(0, (stray,), False, RoundBatch({1: stray}))
        assert proc.outputs == []
        assert not proc.core.has_instance()

    @pytest.mark.parametrize("core_ref", BOTH_CORES)
    def test_checkpoint_process_survives_pre_instance_rounds(self, core_ref):
        proc = CheckpointCHAProcess(
            propose=lambda k: k, reducer=lambda s, k, v: s, initial_state=0,
            start_round=1, use_reference_core=core_ref)
        assert proc.send(0, False) is None
        proc.deliver(0, (), False)
        assert proc.outputs == []

    @pytest.mark.parametrize("core_ref", BOTH_CORES)
    def test_two_phase_process_survives_pre_instance_rounds(self, core_ref):
        proc = TwoPhaseChaProcess(propose=lambda k: k,
                                  use_reference_core=core_ref)
        # Odd round = veto phase; no instance has begun yet.
        assert proc.send(1, False) is None
        proc.deliver(1, (Message(1, VetoPayload("2pc-cha", 1, 1)),), False)
        assert proc.outputs == []


# ----------------------------------------------------------------------
# Instance-scoped veto reception (the same-tag grid-shift bugfix)
# ----------------------------------------------------------------------


class TestInstanceScopedVetoes:
    @pytest.mark.parametrize("core_ref", BOTH_CORES)
    @pytest.mark.parametrize("batched", [False, True])
    def test_stale_veto_is_ignored(self, core_ref, batched):
        """A veto for another instance (a shifted-grid ensemble's, or a
        stale one) must not demote the current instance."""
        proc = CHAProcess(propose=default_proposer(0),
                          use_reference_core=core_ref)
        payload = proc.send(0, True)
        proc.deliver(0, (Message(0, payload),), False)
        proc.send(1, False)
        stale = Message(1, VetoPayload("cha", 99, 1))

        def deliver(r, msg):
            if batched:
                proc.deliver_batch(r, (msg,), False, RoundBatch({1: msg}))
            else:
                proc.deliver(r, (msg,), False)

        deliver(1, stale)
        assert proc.core.color_of(1) is Color.GREEN
        proc.send(2, False)
        deliver(2, Message(1, VetoPayload("cha", 99, 2)))
        assert proc.core.color_of(1) is Color.GREEN
        (k, out), = proc.outputs
        assert k == 1 and out is not BOTTOM  # decided despite the noise

    @pytest.mark.parametrize("core_ref", BOTH_CORES)
    def test_matching_veto_still_demotes(self, core_ref):
        """The filter must not be over-broad: a veto for *this* instance
        keeps its seed semantics."""
        proc = CHAProcess(propose=default_proposer(0),
                          use_reference_core=core_ref)
        payload = proc.send(0, True)
        proc.deliver(0, (Message(0, payload),), False)
        proc.send(1, False)
        proc.deliver(1, (), False)
        proc.send(2, False)
        proc.deliver(2, (Message(1, VetoPayload("cha", 1, 2)),), False)
        assert proc.core.color_of(1) is Color.YELLOW
        (k, out), = proc.outputs
        assert k == 1 and out is BOTTOM


# ----------------------------------------------------------------------
# End-to-end mid-grid joins
# ----------------------------------------------------------------------


def _midgrid_simulator():
    # One execution = one chain-interning generation (the experiment
    # stepper's rule); these tests drive the Simulator directly and
    # compare pickles across executions, so they follow it themselves.
    new_chain_generation()
    return Simulator(spec=RadioSpec(r1=1.0, r2=1.5, rcf=0),
                     cms={"C": LeaderElectionCM(stable_round=0)})


def _run_midgrid_cha(core_ref, *, checkpoint=False):
    """3 veterans from round 0 plus a node powered up at round 10 —
    off its own 3-round grid, so its first rounds are veto phases."""
    sim = _midgrid_simulator()
    positions = cluster_positions(4)
    procs = {}
    for node in range(4):
        if checkpoint:
            proc = CheckpointCHAProcess(
                propose=default_proposer(node),
                reducer=lambda s, k, v: (s or 0) + 1, initial_state=0,
                use_reference_core=core_ref)
        else:
            proc = CHAProcess(propose=default_proposer(node),
                              use_reference_core=core_ref)
        start = 10 if node == 3 else 0
        sim.add_node(proc, positions[node], start_round=start)
        procs[node] = proc
    sim.run(30)
    return procs


class TestMidGridJoin:
    @pytest.mark.parametrize("checkpoint", [False, True])
    def test_join_runs_and_veterans_agree(self, checkpoint):
        observables = []
        for core_ref in BOTH_CORES:
            procs = _run_midgrid_cha(core_ref, checkpoint=checkpoint)
            outputs = {n: p.outputs for n, p in procs.items()}
            proposals = {n: p.proposals_made for n, p in procs.items()}
            veterans = {n: outputs[n] for n in (0, 1, 2)}
            if not checkpoint:  # checkpoint outputs are not OutputLogs
                check_validity(veterans, proposals)
                check_agreement(veterans)
            # The joiner's grid is shifted: it never hears a matching
            # ballot, so every instance it runs is red/bottom — but it
            # must run them without crashing.
            assert procs[3].outputs
            assert all(out is BOTTOM for _, out in procs[3].outputs)
            observables.append(pickle.dumps((outputs, proposals)))
        assert observables[0] == observables[1]  # cores byte-identical

    def test_two_phase_join_runs(self):
        observables = []
        for core_ref in BOTH_CORES:
            sim = _midgrid_simulator()
            positions = cluster_positions(4)
            procs = {}
            for node in range(4):
                proc = TwoPhaseChaProcess(propose=default_proposer(node),
                                          use_reference_core=core_ref)
                start = 9 if node == 3 else 0  # odd: lands on a veto phase
                sim.add_node(proc, positions[node], start_round=start)
                procs[node] = proc
            sim.run(24)
            veterans = {n: procs[n].outputs for n in (0, 1, 2)}
            check_agreement(veterans)
            assert all(out is BOTTOM for _, out in procs[3].outputs)
            observables.append(pickle.dumps(
                {n: p.outputs for n, p in procs.items()}))
        assert observables[0] == observables[1]

    def test_shifted_grid_same_tag_ensembles(self):
        """Two same-tag CHA ensembles on grids shifted by one round share
        the channel; instance-scoped vetoes keep each decisive."""
        observables = []
        for core_ref in BOTH_CORES:
            sim = _midgrid_simulator()
            positions = cluster_positions(6)
            procs = {}
            for node in range(6):
                shifted = node >= 3
                proc = CHAProcess(propose=default_proposer(node),
                                  start_round=1 if shifted else 0,
                                  use_reference_core=core_ref)
                sim.add_node(proc, positions[node],
                             start_round=1 if shifted else 0)
                procs[node] = proc
            sim.run(31)
            for group in ((0, 1, 2), (3, 4, 5)):
                check_agreement({n: procs[n].outputs for n in group})
                assert all(procs[n].outputs for n in group)
            observables.append(pickle.dumps(
                {n: p.outputs for n, p in procs.items()}))
        assert observables[0] == observables[1]


# ----------------------------------------------------------------------
# Payload pooling: zero steady-state wire allocations
# ----------------------------------------------------------------------


def test_pooled_run_allocates_no_wire_objects_in_steady_state(monkeypatch):
    """With ``keep_trace=False`` the runner pools wire payloads: after
    warm-up, stepping more rounds constructs zero ``BallotPayload``,
    ``Ballot`` or ``VetoPayload`` objects."""
    from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
    from repro.experiment.runner import ExperimentStepper

    # Count ``__init__`` calls, not ``__new__``: restoring a patched
    # ``__new__`` on a class that never defined one leaves a slot
    # dispatcher behind that forwards ctor args to ``object.__new__``
    # and poisons every later construction in the process.  ``__init__``
    # lives in each dataclass's own ``__dict__``, so monkeypatch
    # restores it exactly — and the pooled path mutates payloads via
    # ``object.__setattr__`` without ever re-entering ``__init__``.
    counts = {"BallotPayload": 0, "Ballot": 0, "VetoPayload": 0}
    for cls in (BallotPayload, Ballot, VetoPayload):
        def counting_init(self, *args, _name=cls.__name__,
                          _orig=cls.__init__, **kwargs):
            counts[_name] += 1
            _orig(self, *args, **kwargs)
        monkeypatch.setattr(cls, "__init__", counting_init)

    spec = ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=4),
        workload=WorkloadSpec(instances=20),
        keep_trace=False,
    )
    stepper = ExperimentStepper(spec)
    stepper.step(6)  # warm-up: pooled payloads are created lazily
    warm = dict(counts)
    assert warm["BallotPayload"] > 0  # the pool itself was built
    stepper.step(30)
    assert counts == warm, "steady-state rounds allocated wire objects"
    result = stepper.finish()
    assert result.invariants == {}
