"""Unit tests for the executable CHA specification checkers."""

import pytest

from repro.core import (
    History,
    check_agreement,
    check_all,
    check_liveness,
    check_validity,
    find_liveness_point,
)
from repro.errors import SpecViolation
from repro.types import BOTTOM


def H(length, **entries):
    return History(length, {int(k[1:]): v for k, v in entries.items()})


class TestValidity:
    def test_accepts_proposed_values(self):
        outputs = {0: [(2, H(2, i1="a", i2="b"))]}
        proposals = {0: {1: "a", 2: "x"}, 1: {1: "y", 2: "b"}}
        check_validity(outputs, proposals)

    def test_rejects_invented_value(self):
        outputs = {0: [(1, H(1, i1="ghost"))]}
        proposals = {0: {1: "real"}}
        with pytest.raises(SpecViolation, match="validity"):
            check_validity(outputs, proposals)

    def test_rejects_value_from_wrong_instance(self):
        # "a" was proposed, but only for instance 2.
        outputs = {0: [(2, H(2, i1="a"))]}
        proposals = {0: {1: "b", 2: "a"}}
        with pytest.raises(SpecViolation):
            check_validity(outputs, proposals)

    def test_bottom_outputs_ignored(self):
        outputs = {0: [(1, BOTTOM), (2, BOTTOM)]}
        check_validity(outputs, {0: {1: "a", 2: "b"}})

    def test_bottom_entries_inside_history_ignored(self):
        outputs = {0: [(3, H(3, i3="c"))]}
        check_validity(outputs, {0: {3: "c"}})


class TestAgreement:
    def test_accepts_prefix_consistent_histories(self):
        outputs = {
            0: [(2, H(2, i1="a", i2="b"))],
            1: [(3, H(3, i1="a", i2="b", i3="c"))],
        }
        check_agreement(outputs)
        check_agreement(outputs, exhaustive=True)

    def test_rejects_value_disagreement(self):
        outputs = {
            0: [(2, H(2, i1="a", i2="b"))],
            1: [(2, H(2, i1="a", i2="DIFFERENT"))],
        }
        with pytest.raises(SpecViolation, match="agreement"):
            check_agreement(outputs)
        with pytest.raises(SpecViolation, match="agreement"):
            check_agreement(outputs, exhaustive=True)

    def test_rejects_bottom_vs_value_disagreement(self):
        outputs = {
            0: [(2, H(2, i1="a", i2="b"))],
            1: [(2, H(2, i2="b"))],  # bottoms instance 1
        }
        with pytest.raises(SpecViolation):
            check_agreement(outputs)

    def test_same_node_successive_outputs_must_agree(self):
        outputs = {
            0: [(1, H(1, i1="a")), (2, H(2, i1="FLIP", i2="b"))],
        }
        with pytest.raises(SpecViolation):
            check_agreement(outputs)

    def test_rejects_wrong_length_history(self):
        outputs = {0: [(3, H(2, i1="a"))]}
        with pytest.raises(SpecViolation, match="length"):
            check_agreement(outputs)

    def test_all_bottom_execution_trivially_agrees(self):
        outputs = {0: [(1, BOTTOM)], 1: [(1, BOTTOM)]}
        check_agreement(outputs)

    def test_empty_outputs(self):
        check_agreement({})

    def test_divergence_beyond_common_prefix_allowed(self):
        # Node 1's history is longer; extra instances are not compared.
        outputs = {
            0: [(1, H(1, i1="a"))],
            1: [(3, H(3, i1="a", i3="c"))],
        }
        check_agreement(outputs)


class TestLiveness:
    def test_immediately_live_execution(self):
        outputs = {
            0: [(1, H(1, i1="a")), (2, H(2, i1="a", i2="b"))],
            1: [(1, H(1, i1="a")), (2, H(2, i1="a", i2="b"))],
        }
        assert find_liveness_point(outputs) == 1

    def test_convergence_after_unstable_prefix(self):
        outputs = {
            0: [(1, BOTTOM), (2, H(2, i2="b")), (3, H(3, i2="b", i3="c"))],
            1: [(1, BOTTOM), (2, H(2, i2="b")), (3, H(3, i2="b", i3="c"))],
        }
        assert find_liveness_point(outputs) == 2

    def test_never_converges(self):
        outputs = {0: [(1, BOTTOM), (2, BOTTOM)]}
        assert find_liveness_point(outputs) is None

    def test_late_bottom_pushes_kst_later(self):
        outputs = {0: [
            (1, H(1, i1="a")),
            (2, BOTTOM),
            (3, H(3, i1="a", i3="c")),
        ]}
        # kst=1 fails (bottom at instance 2); kst=3 works.
        assert find_liveness_point(outputs) == 3

    def test_tail_must_include_all_tail_instances(self):
        # Outputs exist but the history at 3 bottoms instance 2: kst=2
        # fails, kst=3 works.
        outputs = {0: [
            (2, H(2, i2="b")),
            (3, H(3, i3="c")),
        ]}
        assert find_liveness_point(outputs) == 3

    def test_crashed_nodes_exempt_via_alive(self):
        outputs = {
            0: [(1, BOTTOM)],
            1: [(1, H(1, i1="a"))],
        }
        assert find_liveness_point(outputs, alive=[1]) == 1
        assert find_liveness_point(outputs) is None

    def test_check_liveness_bound(self):
        outputs = {0: [(1, BOTTOM), (2, H(2, i2="b"))]}
        assert check_liveness(outputs, by_instance=2) == 2
        with pytest.raises(SpecViolation, match="liveness"):
            check_liveness(outputs, by_instance=1)

    def test_check_liveness_no_convergence(self):
        with pytest.raises(SpecViolation):
            check_liveness({0: [(1, BOTTOM)]}, by_instance=1)

    def test_empty_nodes(self):
        assert find_liveness_point({}) is None


class TestCheckAll:
    def test_combined_happy_path(self):
        outputs = {0: [(1, H(1, i1="a"))]}
        proposals = {0: {1: "a"}}
        assert check_all(outputs, proposals, liveness_by=1) == 1

    def test_without_liveness(self):
        outputs = {0: [(1, BOTTOM)]}
        assert check_all(outputs, {0: {1: "a"}}) is None
