"""Unit tests for the ChaCore state machine, driven event by event.

These tests exercise Figure 1 line-by-line, including the Figure 2 colour
table, without any simulator: the channel is played by hand.
"""

import pytest

from repro.core import Ballot, ChaCore, calculate_history
from repro.core.history import History
from repro.errors import ProtocolError
from repro.types import BOTTOM, Color


def make_core(values=None):
    values = values or {}
    return ChaCore(propose=lambda k: values.get(k, f"v{k}"))


def run_instance(core, *, ballots=None, ballot_collision=False,
                 veto1=False, veto1_collision=False,
                 veto2=False, veto2_collision=False,
                 include_own=True):
    """Drive one full instance; returns (instance, output)."""
    own = core.begin_instance()
    received = list(ballots or [])
    if include_own and not ballots:
        received = [own.ballot]
    core.on_ballot_reception(received, ballot_collision)
    core.on_veto1_reception(veto1, veto1_collision)
    return core.on_veto2_reception(veto2, veto2_collision)


class TestFigure2ColorTable:
    """Each row of Figure 2: phase outcomes -> colour -> output."""

    def test_row_all_clean_is_green_with_history(self):
        core = make_core()
        k, output = run_instance(core)
        assert core.color_of(k) is Color.GREEN
        assert output is not BOTTOM
        assert output(1) == "v1"

    def test_row_veto2_trouble_is_yellow_bottom(self):
        core = make_core()
        k, output = run_instance(core, veto2_collision=True)
        assert core.color_of(k) is Color.YELLOW
        assert output is BOTTOM

    def test_row_veto1_trouble_is_orange_bottom(self):
        core = make_core()
        k, output = run_instance(core, veto1_collision=True, veto2=True)
        assert core.color_of(k) is Color.ORANGE
        assert output is BOTTOM

    def test_row_ballot_trouble_is_red_bottom(self):
        core = make_core()
        k, output = run_instance(
            core, ballot_collision=True, veto1=True, veto2=True,
            include_own=False,
        )
        assert core.color_of(k) is Color.RED
        assert output is BOTTOM

    def test_empty_ballot_reception_is_red(self):
        core = make_core()
        core.begin_instance()
        core.on_ballot_reception([], collision=False)
        assert core.color_of(1) is Color.RED

    def test_veto_message_downgrades_like_collision(self):
        core = make_core()
        k, output = run_instance(core, veto1=True, veto2=True)
        assert core.color_of(k) is Color.ORANGE


class TestColorLattice:
    def test_red_never_upgraded_by_veto_phases(self):
        core = make_core()
        run_instance(core, ballot_collision=True, include_own=False)
        assert core.color_of(1) is Color.RED

    def test_orange_not_downgraded_to_yellow(self):
        # min() keeps the worst colour: orange survives a veto-2 collision.
        core = make_core()
        run_instance(core, veto1_collision=True, veto2_collision=True)
        assert core.color_of(1) is Color.ORANGE

    def test_is_good_boundary(self):
        assert Color.GREEN.is_good and Color.YELLOW.is_good
        assert not Color.ORANGE.is_good and not Color.RED.is_good

    def test_shade_distance(self):
        assert Color.GREEN.shade_distance(Color.YELLOW) == 1
        assert Color.RED.shade_distance(Color.GREEN) == 3


class TestVetoDecisions:
    def test_red_vetoes_in_both_phases(self):
        core = make_core()
        core.begin_instance()
        core.on_ballot_reception([], collision=True)
        assert core.wants_veto1()
        core.on_veto1_reception(False, False)
        assert core.wants_veto2()

    def test_orange_vetoes_only_in_veto2(self):
        core = make_core()
        own = core.begin_instance()
        core.on_ballot_reception([own.ballot], collision=False)
        assert not core.wants_veto1()
        core.on_veto1_reception(True, False)
        assert core.wants_veto2()

    def test_green_never_vetoes(self):
        core = make_core()
        own = core.begin_instance()
        core.on_ballot_reception([own.ballot], collision=False)
        assert not core.wants_veto1()
        core.on_veto1_reception(False, False)
        assert not core.wants_veto2()


class TestPrevInstancePointer:
    def test_good_instances_advance_prev(self):
        core = make_core()
        run_instance(core)
        assert core.prev_instance == 1
        run_instance(core, veto2_collision=True)  # yellow is still good
        assert core.prev_instance == 2

    def test_bad_instances_do_not_advance_prev(self):
        core = make_core()
        run_instance(core)
        run_instance(core, veto1_collision=True, veto2=True)  # orange
        assert core.prev_instance == 1
        run_instance(core, ballot_collision=True, include_own=False)  # red
        assert core.prev_instance == 1

    def test_ballot_carries_prev_pointer(self):
        core = make_core()
        run_instance(core)
        payload = core.begin_instance()
        assert payload.ballot.prev_instance == 1


class TestBallotAdoption:
    def test_min_ballot_adopted(self):
        core = make_core()
        core.begin_instance()
        core.on_ballot_reception(
            [Ballot("zz", 0), Ballot("aa", 0)], collision=False,
        )
        assert core.ballots[1] == Ballot("aa", 0)

    def test_red_instance_stores_no_ballot(self):
        core = make_core()
        core.begin_instance()
        core.on_ballot_reception([Ballot("aa", 0)], collision=True)
        assert 1 not in core.ballots

    def test_proposals_recorded(self):
        core = make_core(values={1: "first", 2: "second"})
        run_instance(core)
        run_instance(core)
        assert core.proposals_made == {1: "first", 2: "second"}


class TestCalculateHistory:
    def test_straight_chain(self):
        ballots = {
            1: Ballot("a", 0),
            2: Ballot("b", 1),
            3: Ballot("c", 2),
        }
        h = calculate_history(3, 3, ballots)
        assert h == History(3, {1: "a", 2: "b", 3: "c"})

    def test_chain_skips_bad_instances(self):
        # Instance 2 was bad: ballot 3's prev pointer jumps over it.
        ballots = {
            1: Ballot("a", 0),
            3: Ballot("c", 1),
        }
        h = calculate_history(3, 3, ballots)
        assert h == History(3, {1: "a", 3: "c"})
        assert h(2) is BOTTOM

    def test_prev_below_instance(self):
        # Current instance is bad; chain starts at the last good one.
        ballots = {1: Ballot("a", 0), 2: Ballot("b", 1)}
        h = calculate_history(4, 2, ballots)
        assert h == History(4, {1: "a", 2: "b"})

    def test_prev_zero_yields_all_bottom(self):
        h = calculate_history(3, 0, {})
        assert h == History(3, {})

    def test_missing_chain_ballot_raises(self):
        with pytest.raises(ProtocolError):
            calculate_history(2, 2, {})

    def test_instance_zero(self):
        assert calculate_history(0, 0, {}) == History(0, {})


class TestSnapshotRestore:
    def test_roundtrip(self):
        core = make_core()
        run_instance(core)
        run_instance(core, veto2_collision=True)
        snap = core.snapshot()
        other = make_core()
        other.restore(snap)
        assert other.k == core.k
        assert other.prev_instance == core.prev_instance
        assert other.ballots == core.ballots
        assert other.status == core.status

    def test_snapshot_is_a_copy(self):
        core = make_core()
        run_instance(core)
        snap = core.snapshot()
        run_instance(core)
        assert snap["k"] == 1 and core.k == 2


class TestIntrospection:
    def test_decided_history_none_before_any_green(self):
        core = make_core()
        run_instance(core, veto2_collision=True)
        assert core.decided_history() is None

    def test_decided_history_latest_green(self):
        core = make_core()
        run_instance(core)
        run_instance(core, veto2_collision=True)
        h = core.decided_history()
        assert h is not None and h.length == 1

    def test_resident_entries_grow(self):
        core = make_core()
        before = core.resident_entries()
        run_instance(core)
        run_instance(core)
        assert core.resident_entries() > before

    def test_current_history_defined_mid_execution(self):
        core = make_core()
        run_instance(core, veto1_collision=True, veto2=True)
        h = core.current_history()
        assert h.length == 1 and h(1) is BOTTOM
