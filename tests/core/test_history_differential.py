"""Whole-run differential verification of the history engines.

For every CHA-family protocol (plain, checkpoint, the two-phase
ablation, the naive full-history RSM) and the VI emulation, the run is
executed in every combination of

* **history engine**: incremental chain fold vs the seed re-walking
  reference (``use_reference_history``), and
* **simulation engine**: fast path + indexed channel vs uncached engine
  + all-pairs reference channel (PR 3's switches),

and the pickled observables — the full wire trace, every node's output
log (histories pickle canonically, so chain- and dict-backed forms are
byte-identical), proposals, metrics and invariant verdicts — must be
byte-for-byte equal to the all-reference run.  This is the regression
gate for any future change to the fold, the chain interning, or the
spec checkers' short-circuits.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, MetricsSpec, WorkloadSpec
from repro.experiment import (
    CheckpointCHA,
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    NaiveRSM,
    TwoPhaseCHA,
    VIEmulation,
)
from repro.experiment.runner import run
from repro.geometry import Point
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    RandomLossAdversary,
    WindowAdversary,
)
from repro.vi.program import CounterProgram
from repro.vi.schedule import VNSite

pytestmark = pytest.mark.fast

#: (history_reference, engine_reference) — the all-reference corner is
#: the baseline the other three must match byte-for-byte.
MODES = [(True, True), (True, False), (False, True), (False, False)]


def _count_reducer(state, k, value):
    return (state or 0) + 1


def _cluster_env():
    return EnvironmentSpec(
        adversary=WindowAdversary(
            RandomLossAdversary(p_drop=0.25, p_false=0.2, seed=13), until=30),
        crashes=CrashSchedule([Crash(4, 20, CrashPoint.AFTER_SEND)]),
    )


def _cha_spec():
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=6, rcf=24),
        environment=_cluster_env(),
        workload=WorkloadSpec(instances=14),
        metrics=MetricsSpec(metrics=("decided_instances", "bottom_rate"),
                            invariants=("validity", "agreement")),
    )


def _checkpoint_spec():
    return ExperimentSpec(
        protocol=CheckpointCHA(reducer=_count_reducer, initial_state=0),
        world=ClusterWorld(n=5, rcf=18),
        environment=_cluster_env(),
        workload=WorkloadSpec(instances=14),
        metrics=MetricsSpec(metrics=("decided_instances",),
                            invariants=("lemma5", "prev_pointer")),
    )


def _two_phase_spec():
    return ExperimentSpec(
        protocol=TwoPhaseCHA(),
        world=ClusterWorld(n=5, rcf=12),
        environment=_cluster_env(),
        workload=WorkloadSpec(instances=14),
        metrics=MetricsSpec(metrics=("decided_instances",),
                            invariants=("validity", "agreement")),
    )


def _naive_rsm_spec():
    # The naive RSM puts the *entire computed history* in every ballot,
    # so here the history engines differ on the wire, not just in
    # outputs: any fold divergence corrupts the trace itself.
    return ExperimentSpec(
        protocol=NaiveRSM(),
        world=ClusterWorld(n=5, rcf=12),
        environment=_cluster_env(),
        workload=WorkloadSpec(instances=12),
        metrics=MetricsSpec(metrics=("max_message_size",),
                            invariants=("validity", "agreement")),
    )


def _vi_spec():
    sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(0.5, 0.0)))
    devices = tuple(
        DeviceSpec(mobility=Point(site.location.x + dx, 0.1 * (j + 1)))
        for site in sites
        for j, dx in enumerate((-0.1, 0.1))
    )
    return ExperimentSpec(
        protocol=VIEmulation(programs={0: CounterProgram(),
                                       1: CounterProgram()}),
        world=DeployedWorld(sites=sites, devices=devices),
        environment=EnvironmentSpec(
            crashes=CrashSchedule([Crash(1, 40, CrashPoint.AFTER_SEND)]),
        ),
        workload=WorkloadSpec(virtual_rounds=8),
        metrics=MetricsSpec(metrics=("availability", "emulation_gaps"),
                            invariants=("replica_consistency",)),
    )


SPECS = {
    "cha": _cha_spec,
    "checkpoint-cha": _checkpoint_spec,
    "two-phase-cha": _two_phase_spec,
    "naive-rsm": _naive_rsm_spec,
    "vi": _vi_spec,
}


def _observables(spec_factory, *, history_ref: bool,
                 engine_ref: bool) -> bytes:
    spec = dataclasses.replace(spec_factory(),
                               use_reference_history=history_ref)

    def instrument(sim):
        sim.fast_path = not engine_ref
        sim.channel.use_reference = engine_ref

    result = run(spec, instrument=instrument)
    return pickle.dumps({
        "trace": result.trace,
        "outputs": result.outputs,
        "proposals": result.proposals,
        "metrics": result.metrics,
        "invariants": result.invariants,
    })


@pytest.mark.parametrize("name", sorted(SPECS))
def test_history_switch_combinations_byte_identical(name):
    spec_factory = SPECS[name]
    baseline = _observables(spec_factory, history_ref=True, engine_ref=True)
    for history_ref, engine_ref in MODES[1:]:
        got = _observables(spec_factory, history_ref=history_ref,
                           engine_ref=engine_ref)
        assert got == baseline, (name, history_ref, engine_ref)


def test_spec_switch_reaches_every_core():
    """use_reference_history= on the spec pins each constructed core."""
    for factory, attr in ((_cha_spec, "core"), (_checkpoint_spec, "core"),
                          (_two_phase_spec, "core")):
        spec = dataclasses.replace(factory(), use_reference_history=True,
                                   keep_trace=False)
        result = run(spec)
        assert all(proc.core.use_reference_history
                   for proc in result.processes.values())
    vi = dataclasses.replace(_vi_spec(), use_reference_history=True,
                             keep_trace=False)
    result = run(vi)
    replicas = [dev.replica for dev in result.processes.values()
                if dev.replica is not None]
    assert replicas
    assert all(rep.core.use_reference_history for rep in replicas)
