"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import Ballot, History, calculate_history, canonical_key
from repro.core.cha import ChaCore
from repro.types import BOTTOM, Color

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

values = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=8),
    st.tuples(st.integers(0, 9), st.text(max_size=3)),
)


@st.composite
def histories(draw, max_length=20):
    length = draw(st.integers(0, max_length))
    if length == 0:
        return History(0, {})
    included = draw(st.sets(st.integers(1, length)))
    return History(length, {k: draw(values) for k in included})


@st.composite
def ballot_chains(draw, max_len=15):
    """A well-formed ballot array whose prev pointers strictly descend."""
    length = draw(st.integers(1, max_len))
    ballots = {}
    good = [0]
    for k in range(1, length + 1):
        is_good = draw(st.booleans())
        if is_good or k == length:
            ballots[k] = Ballot(draw(values), good[-1])
            good.append(k)
    return length, good[-1], ballots


# ----------------------------------------------------------------------
# History algebra
# ----------------------------------------------------------------------


class TestHistoryProperties:
    @given(histories())
    def test_prefix_idempotent(self, h):
        assert h.prefix(h.length) == h

    @given(histories(), st.integers(0, 25))
    def test_prefix_shrinks_domain(self, h, k):
        p = h.prefix(k)
        assert p.length == min(k, h.length)
        for inst in p.included_instances:
            assert inst <= k

    @given(histories(), st.integers(0, 25))
    def test_history_extends_its_prefix(self, h, k):
        assert h.extends(h.prefix(k))

    @given(histories())
    def test_agrees_with_self(self, h):
        assert h.agrees_with(h)

    @given(histories(), histories())
    def test_agreement_symmetric(self, a, b):
        assert a.agrees_with(b) == b.agrees_with(a)

    @given(histories(), st.integers(0, 25), st.integers(0, 25))
    def test_prefixes_of_same_history_agree(self, h, k1, k2):
        assert h.prefix(k1).agrees_with(h.prefix(k2))

    @given(histories())
    def test_lookup_consistent_with_includes(self, h):
        for k in range(1, h.length + 1):
            assert h.includes(k) == (h(k) is not BOTTOM)

    @given(histories())
    def test_roundtrip_through_items(self, h):
        rebuilt = History(h.length, dict(h.items()))
        assert rebuilt == h and hash(rebuilt) == hash(h)


# ----------------------------------------------------------------------
# Ballot order
# ----------------------------------------------------------------------


class TestBallotOrderProperties:
    @given(values, values)
    def test_canonical_key_total(self, a, b):
        ka, kb = canonical_key(a), canonical_key(b)
        assert (ka < kb) or (kb < ka) or (ka == kb)

    @given(st.lists(st.tuples(values, st.integers(0, 50)), min_size=1, max_size=8))
    def test_min_ballot_invariant_under_permutation(self, pairs):
        ballots = [Ballot(v, p) for v, p in pairs]
        assert min(ballots) == min(list(reversed(ballots)))

    @given(values, values, values)
    def test_order_transitive(self, a, b, c):
        ba, bb, bc = Ballot(a, 0), Ballot(b, 0), Ballot(c, 0)
        if ba <= bb and bb <= bc:
            assert ba <= bc


# ----------------------------------------------------------------------
# calculate-history
# ----------------------------------------------------------------------


class TestCalculateHistoryProperties:
    @given(ballot_chains())
    def test_chain_reconstruction_matches_pointers(self, chain):
        length, prev, ballots = chain
        h = calculate_history(length, prev, ballots)
        # Walk the pointers manually and compare.
        expected = {}
        k = prev
        while k >= 1:
            expected[k] = ballots[k].value
            k = ballots[k].prev_instance
        assert dict(h.items()) == expected

    @given(ballot_chains())
    def test_included_instances_form_descending_pointer_chain(self, chain):
        length, prev, ballots = chain
        h = calculate_history(length, prev, ballots)
        inc = list(h.included_instances)
        for later, earlier in zip(reversed(inc), list(reversed(inc))[1:]):
            assert ballots[later].prev_instance == earlier

    @given(ballot_chains())
    def test_same_chain_same_history_from_any_later_instance(self, chain):
        """Two nodes starting calculate-history at the same good instance
        compute identical values on the common domain (the Lemma 8 core)."""
        length, prev, ballots = chain
        h1 = calculate_history(length, prev, ballots)
        h2 = calculate_history(length + 5, prev, ballots)
        for k in range(1, length + 1):
            assert h1(k) == h2(k)


# ----------------------------------------------------------------------
# ChaCore driven by arbitrary event scripts: Property 4 cannot be broken
# by any single-node schedule, and colours only ever go down.
# ----------------------------------------------------------------------

phase_events = st.tuples(st.booleans(), st.booleans(), st.booleans(),
                         st.booleans(), st.booleans())


class TestChaCoreProperties:
    @given(st.lists(phase_events, min_size=1, max_size=30))
    def test_colors_monotone_and_outputs_well_formed(self, script):
        core = ChaCore(propose=lambda k: f"v{k:04d}")
        for (ballot_ok, v1_veto, v1_col, v2_veto, v2_col) in script:
            own = core.begin_instance()
            colors = [core.color_of(core.k)]
            core.on_ballot_reception(
                [own.ballot] if ballot_ok else [], collision=not ballot_ok,
            )
            colors.append(core.color_of(core.k))
            core.on_veto1_reception(v1_veto, v1_col)
            colors.append(core.color_of(core.k))
            k, out = core.on_veto2_reception(v2_veto, v2_col)
            colors.append(core.color_of(core.k))
            # Colour never increases within an instance.
            assert all(a >= b for a, b in zip(colors, colors[1:]))
            # Output is a history iff the final colour is green.
            assert (out is not BOTTOM) == (colors[-1] is Color.GREEN)
            if out is not BOTTOM:
                assert out.length == k
                assert out.includes(k)

    @given(st.lists(phase_events, min_size=1, max_size=30))
    def test_successive_nonbottom_outputs_extend_each_other(self, script):
        core = ChaCore(propose=lambda k: f"v{k:04d}")
        last = None
        for (ballot_ok, v1_veto, v1_col, v2_veto, v2_col) in script:
            own = core.begin_instance()
            core.on_ballot_reception(
                [own.ballot] if ballot_ok else [], collision=not ballot_ok,
            )
            core.on_veto1_reception(v1_veto, v1_col)
            _, out = core.on_veto2_reception(v2_veto, v2_col)
            if out is not BOTTOM:
                if last is not None:
                    assert out.extends(last)
                last = out
