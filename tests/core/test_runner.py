"""Unit tests for the CHA ensemble runner helpers."""

import pytest

from repro.core import cluster_positions, default_proposer, run_cha
from repro.core.runner import DEFAULT_R1
from repro.geometry import Point, max_pairwise_distance


class TestClusterPositions:
    def test_all_within_r1_of_each_other(self):
        # The Section 3 precondition: every pair can communicate.
        positions = cluster_positions(12)
        assert max_pairwise_distance(positions) <= DEFAULT_R1

    def test_positions_distinct(self):
        positions = cluster_positions(8)
        assert len(set(p.as_tuple() for p in positions)) == 8

    def test_custom_center(self):
        positions = cluster_positions(4, center=Point(10, 10), radius=0.1)
        for p in positions:
            assert Point(10, 10).within(p, 0.1 + 1e-9)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            cluster_positions(0)


class TestDefaultProposer:
    def test_fixed_width_values(self):
        propose = default_proposer(3)
        assert len(propose(1)) == len(propose(999_999))

    def test_distinct_across_nodes_and_instances(self):
        a, b = default_proposer(0), default_proposer(1)
        assert a(1) != b(1)
        assert a(1) != a(2)

    def test_values_totally_ordered(self):
        propose = default_proposer(0)
        assert propose(1) < propose(2)  # zero-padding keeps string order


class TestChaRunHelpers:
    def test_surviving_nodes_without_crashes(self):
        run = run_cha(n=3, instances=2)
        assert run.surviving_nodes() == [0, 1, 2]

    def test_outputs_and_proposals_cover_all_nodes(self):
        run = run_cha(n=4, instances=3)
        assert set(run.outputs) == set(run.proposals) == {0, 1, 2, 3}

    def test_colors_at_only_survivors(self):
        from repro.net import CrashSchedule
        run = run_cha(n=3, instances=5, crashes=CrashSchedule.of({1: 4}))
        assert set(run.colors_at(5)) == {0, 2}

    def test_history_of_matches_outputs(self):
        from repro.types import BOTTOM
        run = run_cha(n=2, instances=6)
        last_output = [out for _, out in run.outputs[0] if out is not BOTTOM][-1]
        assert run.history_of(0) == last_output
