"""Integration tests: CHAP ensembles on the simulated radio channel.

These tests check the theorems of Section 3.6 on whole executions,
including the footnote-2 decide-and-crash scenario and Property 4.
"""

import pytest

from repro.contention import LeaderElectionCM
from repro.core import (
    ROUNDS_PER_INSTANCE,
    check_agreement,
    check_all,
    check_liveness,
    check_validity,
    find_liveness_point,
    run_cha,
)
from repro.detectors import EventuallyAccurateDetector
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    PartitionAdversary,
    RandomLossAdversary,
    ScriptedAdversary,
)
from repro.types import BOTTOM, Color


class TestStableExecution:
    def test_all_green_from_first_instance(self):
        run = run_cha(n=4, instances=10)
        kst = check_all(run.outputs, run.proposals, liveness_by=1)
        assert kst == 1

    def test_every_node_outputs_every_instance(self):
        run = run_cha(n=3, instances=7)
        for log in run.outputs.values():
            assert [k for k, _ in log] == list(range(1, 8))

    def test_single_node_ensemble(self):
        run = run_cha(n=1, instances=5)
        assert check_all(run.outputs, run.proposals, liveness_by=1) == 1

    def test_histories_identical_across_nodes(self):
        run = run_cha(n=5, instances=6)
        finals = {run.history_of(node) for node in run.processes}
        assert len(finals) == 1

    def test_leader_value_wins(self):
        # The stable leader is node 0 (min id): its proposals fill history.
        run = run_cha(n=4, instances=5)
        h = run.history_of(0)
        assert all(h(k) == f"v0.{k:06d}" for k in range(1, 6))

    def test_three_rounds_per_instance(self):
        run = run_cha(n=4, instances=9)
        assert len(run.trace) == 9 * ROUNDS_PER_INSTANCE


class TestTheorem14Overhead:
    def test_message_size_constant_over_execution(self):
        short = run_cha(n=4, instances=5)
        long = run_cha(n=4, instances=200)
        assert short.trace.max_message_size() == long.trace.max_message_size()

    def test_message_size_independent_of_n(self):
        small = run_cha(n=2, instances=20)
        big = run_cha(n=12, instances=20)
        assert small.trace.max_message_size() == big.trace.max_message_size()


class TestCrashTolerance:
    def test_survivors_converge_after_crashes(self):
        crashes = CrashSchedule.of({0: 10, 1: 20})
        run = run_cha(n=5, instances=30, crashes=crashes)
        survivors = run.surviving_nodes()
        assert set(survivors) == {2, 3, 4}
        check_validity(run.outputs, run.proposals)
        check_agreement(run.outputs)
        outs = {n: run.outputs[n] for n in survivors}
        assert find_liveness_point(outs) is not None

    def test_leader_crash_migrates_leadership(self):
        # Node 0 is the stable leader; it crashes mid-execution and node 1
        # must take over, keeping liveness.
        crashes = CrashSchedule.of({0: 9})  # start of instance 4
        run = run_cha(n=3, instances=20, crashes=crashes)
        outs = {n: run.outputs[n] for n in (1, 2)}
        check_agreement(run.outputs)
        kst = find_liveness_point(outs)
        assert kst is not None

    def test_footnote2_decide_and_crash(self):
        """A node decides an instance and crashes before telling anyone;
        survivors must remain consistent with the unknown decision."""
        # Node 0 (leader) completes instance 2 (rounds 3-5) and crashes
        # right after broadcasting in the last round of that instance.
        crashes = CrashSchedule([Crash(0, 5, CrashPoint.AFTER_SEND)])
        run = run_cha(n=4, instances=10, crashes=crashes)
        # The crashed node's outputs (including any decided history) must
        # agree with everything the survivors ever output.
        check_agreement(run.outputs)
        check_validity(run.outputs, run.proposals)
        dead_log = run.outputs[0]
        assert any(out is not BOTTOM for _, out in dead_log)

    def test_all_but_one_crash(self):
        crashes = CrashSchedule.of({0: 6, 1: 6, 2: 6})
        run = run_cha(n=4, instances=20, crashes=crashes)
        check_agreement(run.outputs)
        outs = {3: run.outputs[3]}
        assert find_liveness_point(outs) is not None


class TestUnstablePeriod:
    def make_unstable_run(self, *, seed, instances=40, n=5, stabilize_at=60):
        return run_cha(
            n=n, instances=instances,
            adversary=RandomLossAdversary(p_drop=0.4, p_false=0.25, seed=seed),
            detector=EventuallyAccurateDetector(racc=stabilize_at),
            cm=LeaderElectionCM(stable_round=stabilize_at, chaos="random", seed=seed),
            rcf=stabilize_at,
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_safety_holds_throughout_instability(self, seed):
        run = self.make_unstable_run(seed=seed)
        check_validity(run.outputs, run.proposals)
        check_agreement(run.outputs)

    @pytest.mark.parametrize("seed", range(4))
    def test_liveness_after_stabilization(self, seed):
        run = self.make_unstable_run(seed=seed)
        # Stabilisation at round 60 = instance 20; convergence must follow
        # within a couple of instances.
        kst = check_liveness(run.outputs, by_instance=23)
        assert kst >= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_property4_one_shade_divergence(self, seed):
        run = self.make_unstable_run(seed=seed)
        for k in range(1, run.instances + 1):
            colors = list(run.colors_at(k).values())
            worst = max(a.shade_distance(b) for a in colors for b in colors)
            assert worst <= 1, f"instance {k} diverged by {worst} shades"

    def test_lemma5_red_implies_no_good(self):
        """Lemma 5 second half: a red instance is red/orange everywhere."""
        seen_red = 0
        for seed in range(10):
            run = self.make_unstable_run(seed=seed, instances=30)
            for k in range(1, 31):
                colors = run.colors_at(k).values()
                if Color.RED in colors:
                    seen_red += 1
                    assert all(c <= Color.ORANGE for c in colors)
        assert seen_red > 0  # the scenario actually occurred

    def test_lemma9_green_included_in_all_later_histories(self):
        for seed in range(5):
            run = self.make_unstable_run(seed=seed, instances=30)
            greens = [
                k for k in range(1, 31)
                if any(c is Color.GREEN for c in run.colors_at(k).values())
            ]
            assert greens, "no green instance in this execution"
            for node, log in run.outputs.items():
                for k_out, out in log:
                    if out is BOTTOM:
                        continue
                    for g in greens:
                        if g <= k_out:
                            assert out.includes(g)


class TestScriptedDisagreement:
    def test_partitioned_nodes_stay_safe(self):
        """Two groups that cannot hear each other never split history."""
        adv = PartitionAdversary([[0, 1], [2, 3]], until_round=30)
        run = run_cha(
            n=4, instances=30,
            adversary=adv,
            detector=EventuallyAccurateDetector(racc=30),
            cm=LeaderElectionCM(stable_round=0),
            rcf=30,
        )
        check_agreement(run.outputs)
        check_validity(run.outputs, run.proposals)
        # After the partition heals the ensemble converges.
        kst = find_liveness_point(run.outputs)
        assert kst is not None and kst <= 12

    def test_targeted_veto2_loss_creates_yellow_green_split(self):
        """Drop the veto-2 round's silence at one node via a false
        collision: it turns yellow while others stay green -- the
        divergence Figure 2 tolerates."""
        # Round 2 is instance 1's veto-2 phase.  A false collision at node
        # 1 only (detector accuracy starts at round 100).
        adv = ScriptedAdversary(false_script=[(2, 1)])
        run = run_cha(
            n=3, instances=4,
            adversary=adv,
            detector=EventuallyAccurateDetector(racc=100),
        )
        colors = run.colors_at(1)
        assert colors[0] is Color.GREEN
        assert colors[1] is Color.YELLOW
        assert colors[2] is Color.GREEN
        check_agreement(run.outputs)
        # The yellow node output bottom for instance 1 but its *next*
        # output includes instance 1 (prev-instance advanced).
        log = dict(run.outputs[1])
        assert log[1] is BOTTOM
        assert log[2] is not BOTTOM and log[2].includes(1)
