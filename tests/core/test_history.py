"""Unit tests for the History datatype."""

import pytest

from repro.core import EMPTY_HISTORY, History
from repro.types import BOTTOM


class TestConstruction:
    def test_empty_history(self):
        h = History(0, {})
        assert h.length == 0
        assert len(h) == 0

    def test_entries_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            History(2, {3: "v"})
        with pytest.raises(ValueError):
            History(2, {0: "v"})

    def test_bottom_values_rejected(self):
        with pytest.raises(ValueError):
            History(2, {1: BOTTOM})

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            History(-1, {})


class TestLookup:
    def test_call_returns_value_or_bottom(self):
        h = History(3, {1: "a", 3: "c"})
        assert h(1) == "a"
        assert h(2) is BOTTOM
        assert h(3) == "c"
        assert h(99) is BOTTOM

    def test_includes(self):
        h = History(3, {2: "b"})
        assert h.includes(2)
        assert not h.includes(1)

    def test_included_instances_sorted(self):
        h = History(5, {4: "d", 1: "a"})
        assert h.included_instances == (1, 4)

    def test_items(self):
        h = History(2, {1: "a", 2: "b"})
        assert list(h.items()) == [(1, "a"), (2, "b")]

    def test_last_included(self):
        assert History(5, {2: "b", 4: "d"}).last_included() == 4
        assert History(5, {}).last_included() is None


class TestEquality:
    def test_equal_histories(self):
        assert History(2, {1: "a"}) == History(2, {1: "a"})

    def test_different_length_not_equal(self):
        assert History(2, {1: "a"}) != History(3, {1: "a"})

    def test_hashable(self):
        assert len({History(1, {1: "a"}), History(1, {1: "a"})}) == 1

    def test_not_equal_to_other_types(self):
        assert History(0, {}) != "history"


class TestPrefixAlgebra:
    def test_prefix_truncates(self):
        h = History(5, {1: "a", 3: "c", 5: "e"})
        p = h.prefix(3)
        assert p.length == 3
        assert p(3) == "c"
        assert not p.includes(5)

    def test_prefix_beyond_length_is_identity(self):
        h = History(2, {1: "a"})
        assert h.prefix(10) == h

    def test_agrees_with_symmetric(self):
        a = History(3, {1: "x", 2: "y"})
        b = History(5, {1: "x", 2: "y", 5: "z"})
        assert a.agrees_with(b)
        assert b.agrees_with(a)

    def test_agrees_with_detects_value_conflict(self):
        a = History(3, {1: "x"})
        b = History(3, {1: "DIFFERENT"})
        assert not a.agrees_with(b)

    def test_agrees_with_detects_bottom_conflict(self):
        # One history includes instance 2, the other bottoms it: disagree.
        a = History(3, {1: "x", 2: "y"})
        b = History(3, {1: "x"})
        assert not a.agrees_with(b)

    def test_agreement_only_on_common_prefix(self):
        # Divergence beyond the shorter length is irrelevant.
        a = History(2, {1: "x"})
        b = History(5, {1: "x", 4: "q"})
        assert a.agrees_with(b)

    def test_extends(self):
        short = History(2, {1: "a"})
        long = History(4, {1: "a", 4: "d"})
        assert long.extends(short)
        assert not short.extends(long)

    def test_empty_history_agrees_with_everything(self):
        h = History(9, {3: "c"})
        assert EMPTY_HISTORY.agrees_with(h)
        assert h.extends(EMPTY_HISTORY)
