"""Differential verification of the slotted protocol core.

PR 7 rebuilt the CHA-family hot state as flat parallel arrays
(:mod:`repro.core.slotted`) behind the fourth reference switch,
``use_reference_core`` / ``REPRO_REFERENCE_CORE``.  This suite is the
regression gate for that core: for every protocol family the pickled
observables of a faulty run must be byte-for-byte identical across the
**full switch matrix** — core × history engine × simulation engine
(the engine switch also flips the channel, PR 3's pairing) — against
the all-reference corner.  It reuses the exact specs of
``test_history_differential``, so the two gates pin the same workloads.

Marked ``core_differential`` so PR CI can run just this gate quickly
(``pytest -m core_differential``).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest
from test_history_differential import MODES, SPECS, _cha_spec, _vi_spec

from repro.core import ChaCore, CheckpointChaCore
from repro.core.slotted import (
    SlottedChaCore,
    SlottedCheckpointChaCore,
    reference_core_forced,
)
from repro.experiment.runner import run

pytestmark = [pytest.mark.fast, pytest.mark.core_differential]

#: core_reference — the third axis on top of test_history_differential's
#: (history_reference, engine_reference) modes.
CORES = [True, False]


def _observables(spec_factory, *, core_ref: bool, history_ref: bool,
                 engine_ref: bool) -> bytes:
    spec = dataclasses.replace(spec_factory(),
                               use_reference_core=core_ref,
                               use_reference_history=history_ref)

    def instrument(sim):
        sim.fast_path = not engine_ref
        sim.channel.use_reference = engine_ref

    result = run(spec, instrument=instrument)
    return pickle.dumps({
        "trace": result.trace,
        "outputs": result.outputs,
        "proposals": result.proposals,
        "metrics": result.metrics,
        "invariants": result.invariants,
    })


@pytest.mark.parametrize("name", sorted(SPECS))
def test_core_switch_byte_identical_full_matrix(name):
    """All eight switch corners produce byte-identical observables."""
    spec_factory = SPECS[name]
    baseline = _observables(spec_factory, core_ref=True,
                            history_ref=True, engine_ref=True)
    for core_ref in CORES:
        for history_ref, engine_ref in MODES:
            if core_ref and history_ref and engine_ref:
                continue  # the baseline itself
            got = _observables(spec_factory, core_ref=core_ref,
                               history_ref=history_ref,
                               engine_ref=engine_ref)
            assert got == baseline, (name, core_ref, history_ref, engine_ref)


def test_pooled_run_matches_reference_core():
    """``keep_trace=False`` switches payload pooling on (the runner's
    safety rule); the pooled slotted core must still produce the exact
    observables of the reference core."""
    def run_with(core_ref):
        spec = dataclasses.replace(_cha_spec(), keep_trace=False,
                                   use_reference_core=core_ref)
        result = run(spec)
        return pickle.dumps({
            "outputs": result.outputs,
            "proposals": result.proposals,
            "metrics": result.metrics,
            "invariants": result.invariants,
        })

    assert run_with(False) == run_with(True)


def test_spec_switch_reaches_every_process():
    """``use_reference_core`` on the spec pins each constructed core;
    the default builds the slotted core everywhere."""
    for core_ref, base_cls, ckpt_cls in (
            (True, ChaCore, CheckpointChaCore),
            (None, SlottedChaCore, SlottedCheckpointChaCore)):
        from test_history_differential import (
            _checkpoint_spec,
            _two_phase_spec,
        )
        for factory in (_cha_spec, _two_phase_spec):
            spec = dataclasses.replace(factory(), use_reference_core=core_ref,
                                       keep_trace=False)
            result = run(spec)
            assert all(type(proc.core) is base_cls
                       for proc in result.processes.values())
        spec = dataclasses.replace(_checkpoint_spec(),
                                   use_reference_core=core_ref,
                                   keep_trace=False)
        result = run(spec)
        assert all(type(proc.core) is ckpt_cls
                   for proc in result.processes.values())
        vi = dataclasses.replace(_vi_spec(), use_reference_core=core_ref,
                                 keep_trace=False)
        result = run(vi)
        replicas = [dev.replica for dev in result.processes.values()
                    if dev.replica is not None]
        assert replicas
        assert all(type(rep.core) is ckpt_cls for rep in replicas)


def test_environment_switch_pins_new_cores(monkeypatch):
    monkeypatch.setenv("REPRO_REFERENCE_CORE", "1")
    assert reference_core_forced()
    from repro.core.cha import CHAProcess
    proc = CHAProcess(propose=lambda k: k)
    assert type(proc.core) is ChaCore
    monkeypatch.setenv("REPRO_REFERENCE_CORE", "0")
    assert not reference_core_forced()
    proc = CHAProcess(propose=lambda k: k)
    assert type(proc.core) is SlottedChaCore
