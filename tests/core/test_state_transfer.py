"""State-transfer coverage: snapshot/restore round-trips and the
``calculate-history`` missing-ballot error path.

The emulation's join protocol ships :meth:`ChaCore.snapshot` dictionaries
between devices, so a restore must be *behaviourally* equivalent — the
restored core has to keep playing the protocol exactly like the donor —
and ``calculate-history`` must fail loudly (not return a corrupt history)
whenever a ``prev-instance`` chain dangles.
"""

import pytest

from repro.core import Ballot, ChaCore, calculate_history
from repro.core.checkpoint import CheckpointChaCore
from repro.core.history import History
from repro.errors import ProtocolError
from repro.types import BOTTOM, Color


def drive_instance(core, *, veto1=False, veto2=False, collision=False):
    """One full instance where the core hears only its own ballot."""
    own = core.begin_instance()
    core.on_ballot_reception([own.ballot], collision)
    core.on_veto1_reception(veto1, False)
    return core.on_veto2_reception(veto2, False)


def count_reducer(state, k, value):
    return state + (0 if value is BOTTOM else 1)


class TestSnapshotRestoreRoundTrip:
    def test_restored_core_continues_identically(self):
        donor = ChaCore(propose=lambda k: f"v{k}")
        drive_instance(donor)
        drive_instance(donor, veto2=True)   # yellow: good but bottom output
        drive_instance(donor, veto1=True)   # orange

        joiner = ChaCore(propose=lambda k: f"v{k}")
        joiner.restore(donor.snapshot())

        # Both cores must now evolve in lock-step under identical inputs.
        for _ in range(3):
            k_a, out_a = drive_instance(donor)
            k_b, out_b = drive_instance(joiner)
            assert (k_a, out_a) == (k_b, out_b)
        assert donor.current_history() == joiner.current_history()
        assert donor.prev_instance == joiner.prev_instance
        assert donor.status == joiner.status

    def test_restore_replaces_all_prior_state(self):
        stale = ChaCore(propose=lambda k: f"s{k}")
        for _ in range(4):
            drive_instance(stale)
        fresh = ChaCore(propose=lambda k: f"f{k}")
        drive_instance(fresh, collision=True)  # red, no ballot stored

        stale.restore(fresh.snapshot())
        assert stale.k == 1
        assert stale.prev_instance == 0
        assert stale.status == {1: Color.RED}
        assert stale.ballots == {}

    def test_snapshot_mutation_does_not_leak_into_donor(self):
        core = ChaCore(propose=lambda k: f"v{k}")
        drive_instance(core)
        snap = core.snapshot()
        snap["status"][1] = Color.RED
        snap["ballots"].clear()
        assert core.status[1] is Color.GREEN
        assert 1 in core.ballots

    def test_checkpoint_core_roundtrip_preserves_fold(self):
        donor = CheckpointChaCore(propose=lambda k: f"v{k}",
                                  reducer=count_reducer, initial_state=0)
        for _ in range(5):
            drive_instance(donor)
        snap = donor.snapshot()
        assert snap["checkpoint_instance"] == 5
        assert snap["checkpoint_state"] == 5

        joiner = CheckpointChaCore(propose=lambda k: f"v{k}",
                                   reducer=count_reducer, initial_state=0)
        joiner.restore(snap)
        assert joiner.checkpoint_instance == donor.checkpoint_instance
        assert joiner.checkpoint_state == donor.checkpoint_state
        k, out = drive_instance(joiner)
        assert k == 6 and out.checkpoint_state == 6

    def test_checkpoint_reset_to_reanchors(self):
        core = CheckpointChaCore(propose=lambda k: f"v{k}",
                                 reducer=count_reducer, initial_state=0)
        for _ in range(3):
            drive_instance(core)
        core.reset_to(10, 0)
        assert core.ballots == {} and core.status == {}
        assert core.current_checkpoint_output().checkpoint_state == 0
        k, out = drive_instance(core)
        assert k == 11
        assert out.checkpoint_instance == 11
        assert out.checkpoint_state == 1  # only the post-reset instance folded


class TestCalculateHistoryErrorPath:
    def test_chain_head_missing_ballot(self):
        with pytest.raises(ProtocolError, match="no ballot is stored"):
            calculate_history(3, 3, {})

    def test_mid_chain_dangling_prev_pointer(self):
        # Ballot 3 points at instance 1, whose ballot was never stored:
        # the walk must fail at 1, not fabricate a history.
        ballots = {3: Ballot("c", 1)}
        with pytest.raises(ProtocolError, match="instance 1"):
            calculate_history(3, 3, ballots)

    def test_intact_chain_still_works(self):
        ballots = {1: Ballot("a", 0), 3: Ballot("c", 1)}
        assert calculate_history(3, 3, ballots) == History(3, {1: "a", 3: "c"})

    def test_restore_of_truncated_snapshot_fails_loudly(self):
        core = ChaCore(propose=lambda k: f"v{k}")
        for _ in range(3):
            drive_instance(core)
        snap = core.snapshot()
        snap["ballots"].pop(2)  # corrupt the chain mid-way
        victim = ChaCore(propose=lambda k: f"v{k}")
        victim.restore(snap)
        with pytest.raises(ProtocolError):
            victim.current_history()
