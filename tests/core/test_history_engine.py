"""Engine-level tests for the incremental history fold.

Covers the reference switch (environment + spec + constructor), the
opt-in history timer, and the regression guarantee that motivated the
engine: a protocol run — including its Agreement check — materialises
*no* per-output history dictionaries (``History.__init__`` is the seed
dict-form constructor; the chain engine bypasses it entirely).
"""

from __future__ import annotations

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, MetricsSpec, WorkloadSpec
from repro.core import (
    HISTORY_TIMER,
    ChaCore,
    History,
    reference_history_forced,
)
from repro.experiment.runner import run

pytestmark = pytest.mark.fast


def _count_inits(monkeypatch):
    counter = {"calls": 0}
    seed_init = History.__init__

    def counting_init(self, length, entries):
        counter["calls"] += 1
        seed_init(self, length, entries)

    monkeypatch.setattr(History, "__init__", counting_init)
    return counter


def _cha50_spec(**overrides):
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=50),
        workload=WorkloadSpec(instances=40),
        metrics=MetricsSpec(invariants=("agreement",)),
        keep_trace=False,
        **overrides,
    )


def test_cha50_run_materialises_no_history_dicts(monkeypatch):
    """The satellite regression: a seeded cha-50 run (with the Agreement
    check that used to rebuild a prefix dict per comparison) performs
    zero dict-form History constructions on the chain engine."""
    counter = _count_inits(monkeypatch)
    result = run(_cha50_spec())
    assert result.invariants == {"agreement": "ok"}
    assert counter["calls"] == 0


def test_cha50_reference_run_still_materialises(monkeypatch):
    """Sanity check of the counter itself: the reference engine builds
    one dict-form History per green output, so the count is O(n * k)."""
    counter = _count_inits(monkeypatch)
    result = run(_cha50_spec(use_reference_history=True))
    assert result.invariants == {"agreement": "ok"}
    assert counter["calls"] >= 50 * 40  # one per node per green instance


def test_prefix_does_not_rebuild_dicts(monkeypatch):
    h = History(5, {1: "a", 3: "c", 5: "e"})
    h._as_chain()  # derive the spine once, outside the counted region
    counter = _count_inits(monkeypatch)
    p = h.prefix(3)
    assert p.length == 3 and p(3) == "c" and not p.includes(5)
    assert h.prefix(4).agrees_with(p)
    assert counter["calls"] == 0


def test_environment_switch_pins_new_cores(monkeypatch):
    monkeypatch.setenv("REPRO_REFERENCE_HISTORY", "1")
    assert reference_history_forced()
    assert ChaCore(propose=lambda k: "x").use_reference_history is True
    monkeypatch.setenv("REPRO_REFERENCE_HISTORY", "0")
    assert not reference_history_forced()
    assert ChaCore(propose=lambda k: "x").use_reference_history is False
    # An explicit constructor argument beats the environment.
    monkeypatch.setenv("REPRO_REFERENCE_HISTORY", "1")
    core = ChaCore(propose=lambda k: "x", use_reference_history=False)
    assert core.use_reference_history is False


def test_history_timer_buckets_run_timings():
    HISTORY_TIMER.reset()
    with HISTORY_TIMER:
        result = run(ExperimentSpec(
            protocol=CHA(), world=ClusterWorld(n=5),
            workload=WorkloadSpec(instances=6), keep_trace=False,
        ))
    assert not HISTORY_TIMER.enabled
    assert HISTORY_TIMER.calls > 0
    assert "history_s" in result.timings
    assert 0.0 <= result.timings["history_s"] <= result.timings["wall_s"]


def test_history_timer_off_by_default():
    result = run(ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=4),
        workload=WorkloadSpec(instances=4), keep_trace=False,
    ))
    assert "history_s" not in result.timings


def test_history_pickles_to_canonical_dict_form():
    import pickle

    ballots_core = ChaCore(propose=lambda k: "x", use_reference_history=False)
    from repro.core.ballot import Ballot
    ballots_core.ballots = {1: Ballot("a", 0), 2: Ballot("b", 1)}
    ballots_core.k = 2
    ballots_core.prev_instance = 2
    chain_backed = ballots_core.current_history()
    dict_built = History(2, {1: "a", 2: "b"})
    assert pickle.dumps(chain_backed) == pickle.dumps(dict_built)
    assert pickle.loads(pickle.dumps(chain_backed)) == chain_backed
