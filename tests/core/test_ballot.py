"""Unit tests for ballots, their total order, and canonical keys."""

import pytest

from repro.core import Ballot, canonical_key
from repro.core.ballot import BallotPayload, VetoPayload


class TestCanonicalKey:
    def test_ints_ordered(self):
        assert canonical_key(1) < canonical_key(2)

    def test_strings_ordered(self):
        assert canonical_key("a") < canonical_key("b")

    def test_cross_type_total_order(self):
        # Tags impose: bool < int < float < str < bytes < seq < set.
        assert canonical_key(True) < canonical_key(5)
        assert canonical_key(10**9) < canonical_key("a")
        assert canonical_key("zzz") < canonical_key(b"a")
        assert canonical_key(b"zz") < canonical_key((1,))

    def test_tuples_recursive(self):
        assert canonical_key((1, "a")) < canonical_key((1, "b"))
        assert canonical_key((1,)) < canonical_key((1, "a"))

    def test_frozenset_order_insensitive(self):
        assert canonical_key(frozenset({1, 2})) == canonical_key(frozenset({2, 1}))

    def test_lists_and_tuples_equivalent(self):
        assert canonical_key([1, 2]) == canonical_key((1, 2))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_key(object())
        with pytest.raises(TypeError):
            canonical_key({"dict": 1})


class TestBallotOrder:
    def test_value_dominates(self):
        assert Ballot("a", 99) < Ballot("b", 0)

    def test_prev_instance_breaks_ties(self):
        assert Ballot("a", 1) < Ballot("a", 2)

    def test_min_is_deterministic(self):
        ballots = [Ballot("c", 0), Ballot("a", 5), Ballot("b", 1)]
        assert min(ballots) == Ballot("a", 5)

    def test_equal_ballots(self):
        assert Ballot("x", 3) == Ballot("x", 3)

    def test_sorting_mixed_value_types(self):
        ballots = [Ballot("s", 0), Ballot(2, 0), Ballot((1, 2), 0)]
        ordered = sorted(ballots)
        assert [b.value for b in ordered] == [2, "s", (1, 2)]

    def test_total_ordering_operators(self):
        a, b = Ballot("a", 0), Ballot("b", 0)
        assert a <= b and a < b and b > a and b >= a


class TestPayloads:
    def test_ballot_payload_fields(self):
        p = BallotPayload("tag", 7, Ballot("v", 6))
        assert p.tag == "tag" and p.instance == 7 and p.ballot.value == "v"

    def test_payloads_frozen_and_hashable(self):
        p = VetoPayload("t", 1, 2)
        assert hash(p) == hash(VetoPayload("t", 1, 2))
        with pytest.raises(Exception):
            p.instance = 9  # type: ignore[misc]
