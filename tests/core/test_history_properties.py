"""Property suite: the incremental HistoryChain fold ≡ the seed fold.

Random ballot worlds — including *adversarial* ``prev`` pointers the real
protocol can never produce (pointers above the current instance, upward
pointers, pointers at instances holding no ballot) — drive both engines
through every observable of :class:`~repro.core.history.History`:
equality, hash, ``items()``, ``prefix``, ``agrees_with``, ``extends``,
lookups, and the error paths (``ProtocolError`` for plain cores,
``KeyError`` for checkpoint cores).  The incremental engine must be
indistinguishable from :func:`~repro.core.cha.calculate_history_reference`
on all of them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChaCore, CheckpointChaCore, History
from repro.core.ballot import Ballot
from repro.core.cha import calculate_history, calculate_history_reference
from repro.errors import ProtocolError

pytestmark = pytest.mark.fast

#: Includes cross-type-equal values (True == 1 == 1.0) and -0.0 == 0.0:
#: interning must never swap one for another across cores.
VALUES = st.sampled_from(["a", "b", "c", "v9", ("t", 1), ("t", True),
                          7, True, 1, 1.0, 0.0, -0.0])


def _fast_core(ballots, instance, prev, *, propose=lambda k: "x"):
    """A chain-engine core with hand-planted protocol state."""
    core = ChaCore(propose=propose, use_reference_history=False)
    core.ballots = dict(ballots)
    core.k = instance
    core.prev_instance = prev
    return core


def _outcome(fn):
    """Normalise a fold attempt to a comparable (kind, payload) pair."""
    try:
        return ("ok", fn())
    except ProtocolError as exc:
        return ("protocol-error", str(exc))
    except KeyError as exc:
        return ("key-error", exc.args)


@st.composite
def ballot_worlds(draw):
    """Random ballots with adversarial prev pointers + a query point."""
    n = draw(st.integers(0, 24))
    ballots = {}
    for k in range(1, n + 1):
        if draw(st.booleans()):
            ballots[k] = Ballot(draw(VALUES), draw(st.integers(-2, n + 2)))
    instance = draw(st.integers(0, n + 2))
    prev = draw(st.integers(-2, n + 3))
    return ballots, instance, prev


@settings(max_examples=150)
@given(ballot_worlds(), st.integers(0, 30))
def test_fold_matches_reference_on_every_observable(world, cut):
    ballots, instance, prev = world
    ref = _outcome(lambda: calculate_history_reference(instance, prev, ballots))
    fast = _outcome(lambda: _fast_core(ballots, instance, prev).current_history())
    assert ref[0] == fast[0]
    if ref[0] != "ok":
        assert ref == fast  # same exception type and payload
        return
    h_ref, h_fast = ref[1], fast[1]
    assert h_fast == h_ref and h_ref == h_fast
    assert hash(h_fast) == hash(h_ref)
    assert tuple(h_fast.items()) == tuple(h_ref.items())
    # The fold must hand back the *stored* value objects, not equal
    # stand-ins canonicalised by interning (True vs 1, 0.0 vs -0.0).
    for (ka, va), (kb, vb) in zip(h_fast.items(), h_ref.items()):
        assert va is vb, (ka, va, vb)
    assert h_fast.included_instances == h_ref.included_instances
    assert len(h_fast) == len(h_ref)
    assert h_fast.length == h_ref.length
    assert h_fast.last_included() == h_ref.last_included()
    for k in range(0, instance + 3):
        assert h_fast(k) == h_ref(k)
        assert h_fast.includes(k) == h_ref.includes(k)
    assert h_fast.prefix(cut) == h_ref.prefix(cut) == h_ref.prefix_reference(cut)
    assert repr(h_fast) == repr(h_ref)


@settings(max_examples=100)
@given(ballot_worlds(), ballot_worlds())
def test_prefix_algebra_matches_reference(world_a, world_b):
    """agrees_with / extends across engines and across mixed pairs."""
    results = []
    for ballots, instance, prev in (world_a, world_b):
        ref = _outcome(
            lambda: calculate_history_reference(instance, prev, ballots))
        fast = _outcome(
            lambda: _fast_core(ballots, instance, prev).current_history())
        assert ref[0] == fast[0]
        if ref[0] != "ok":
            return
        results.append((ref[1], fast[1]))
    (a_ref, a_fast), (b_ref, b_fast) = results
    want_agree = a_ref.agrees_with_reference(b_ref)
    # Every representation pairing must decide Agreement identically.
    for left in (a_ref, a_fast):
        for right in (b_ref, b_fast):
            assert left.agrees_with(right) == want_agree
            assert right.agrees_with(left) == want_agree
            assert left.extends(right) == (
                left.length >= right.length and want_agree)


@settings(max_examples=60)
@given(st.data())
def test_incremental_fold_tracks_protocol_evolution(data):
    """One core driven through many instances: the cached fold must match
    a from-scratch reference walk after *every* protocol event."""
    core = ChaCore(propose=lambda k: f"p{k}", use_reference_history=False)
    steps = data.draw(st.integers(1, 30), label="steps")
    for _ in range(steps):
        payload = core.begin_instance()
        k = core.k
        scenario = data.draw(
            st.sampled_from(["own", "foreign", "silence"]), label=f"b{k}")
        if scenario == "own":
            core.on_ballot_reception([payload.ballot], collision=False)
        elif scenario == "foreign":
            # A lagging peer's ballot: arbitrary downward prev pointer,
            # possibly aimed at an instance that stored no ballot.
            foreign = Ballot(data.draw(VALUES, label=f"v{k}"),
                             data.draw(st.integers(0, k - 1), label=f"fp{k}"))
            core.on_ballot_reception([payload.ballot, foreign],
                                     collision=False)
        else:
            core.on_ballot_reception([], collision=False)
        core.on_veto1_reception(
            data.draw(st.booleans(), label=f"veto1@{k}"), collision=False)
        # End-of-instance bookkeeping, minus the output call so that a
        # broken foreign chain surfaces through current_history below.
        if data.draw(st.booleans(), label=f"veto2@{k}"):
            from repro.types import Color
            core.status[k] = min(Color.YELLOW, core.status[k])
        if core.status[k].is_good:
            core.prev_instance = k

        ref = _outcome(lambda: calculate_history_reference(
            core.k, core.prev_instance, core.ballots))
        fast = _outcome(core.current_history)
        assert ref[0] == fast[0]
        if ref[0] == "ok":
            assert fast[1] == ref[1]
            assert tuple(fast[1].items()) == tuple(ref[1].items())
        # Mirror the real protocol: a node whose chain cannot be folded
        # would crash; keep the run alive by repairing nothing — the
        # next instance simply continues from the same state.


@settings(max_examples=60)
@given(st.data())
def test_checkpoint_fold_matches_reference_core(data):
    """Fast and reference checkpoint cores, same state, same answers —
    including the KeyError path of the seed's direct ballot indexing."""
    n = data.draw(st.integers(0, 18), label="n")
    checkpoint = data.draw(st.integers(0, n), label="checkpoint")
    ballots = {}
    for k in range(1, n + 1):
        if data.draw(st.booleans(), label=f"has{k}"):
            ballots[k] = Ballot(data.draw(VALUES, label=f"v{k}"),
                                data.draw(st.integers(-1, n + 1),
                                          label=f"p{k}"))
    instance = data.draw(st.integers(checkpoint, n + 2), label="instance")
    prev = data.draw(st.integers(-1, n + 2), label="prev")

    cores = []
    for use_reference in (True, False):
        core = CheckpointChaCore(
            propose=lambda k: "x", reducer=lambda s, k, v: s,
            initial_state=None, use_reference_history=use_reference)
        core.ballots = dict(ballots)
        core.k = instance
        core.prev_instance = prev
        core.checkpoint_instance = checkpoint
        cores.append(core)
    ref = _outcome(cores[0].current_history)
    fast = _outcome(cores[1].current_history)
    assert ref[0] == fast[0]
    if ref[0] == "ok":
        assert fast[1] == ref[1]
        assert hash(fast[1]) == hash(ref[1])
        assert tuple(fast[1].items()) == tuple(ref[1].items())
    else:
        assert ref == fast


def test_public_calculate_history_is_the_reference_fold():
    assert calculate_history is calculate_history_reference


def test_missing_ballot_messages_are_identical():
    ballots = {2: Ballot("b", 1)}  # chain 2 -> 1, but 1 stores no ballot
    with pytest.raises(ProtocolError) as ref_err:
        calculate_history_reference(3, 2, ballots)
    with pytest.raises(ProtocolError) as fast_err:
        _fast_core(ballots, 3, 2).current_history()
    assert str(fast_err.value) == str(ref_err.value)


def test_interning_is_type_exact():
    """True/1/1.0 are equal but must never swap objects through the
    shared intern table — reducers, reprs and pickles see exact types."""
    import pickle

    h_bool = _fast_core({1: Ballot(True, 0)}, 1, 1).current_history()
    h_int = _fast_core({1: Ballot(1, 0)}, 1, 1).current_history()
    h_float = _fast_core({1: Ballot(1.0, 0)}, 1, 1).current_history()
    assert h_bool(1) is True and h_int(1) == 1 and h_int(1) is not True
    assert isinstance(h_float(1), float)
    # Equality still follows value semantics, exactly like the seed.
    seed_bool = calculate_history_reference(1, 1, {1: Ballot(True, 0)})
    assert h_bool == h_int == h_float == seed_bool
    assert pickle.dumps(h_bool) == pickle.dumps(seed_bool)
    assert pickle.dumps(h_bool) != pickle.dumps(h_int)
    # Negative zero keeps its sign bit through the fold.
    h_negz = _fast_core({1: Ballot(-0.0, 0)}, 1, 1).current_history()
    import math
    assert math.copysign(1.0, h_negz(1)) == -1.0


def test_prefix_rejects_negative_cut_like_the_seed():
    h = _fast_core({1: Ballot("a", 0)}, 2, 1).current_history()
    with pytest.raises(ValueError):
        h.prefix(-1)
    with pytest.raises(ValueError):
        h.prefix_reference(-1)


def test_interning_makes_equal_folds_identical():
    """Two independent cores folding the same chain share every link, so
    equality and agreement decide by identity (no prefix rebuilds)."""
    ballots = {1: Ballot("a", 0), 2: Ballot("b", 1), 3: Ballot("c", 2)}
    h1 = _fast_core(ballots, 3, 3).current_history()
    h2 = _fast_core(dict(ballots), 3, 3).current_history()
    assert h1 == h2
    assert h1._as_chain() is h2._as_chain()
    # A dict-built (reference) history derives the *same* interned chain.
    h3 = calculate_history_reference(3, 3, ballots)
    assert h3._as_chain() is h1._as_chain()
    # Prefixes share the spine instead of copying it.
    p = h1.prefix(2)
    assert p._chain is h1._as_chain().parent
    assert p == h2.prefix(2)
