"""Unit tests for the exponential back-off contention manager."""

from repro.contention import ExponentialBackoffCM


def drive(cm, contenders, rounds, collide_when_multi=True):
    """Drive the CM with honest channel feedback; returns advice history."""
    history = []
    for r in range(rounds):
        advice = cm.advise(r, contenders)
        history.append(advice)
        cm.feedback(r, active=advice, collided=collide_when_multi and len(advice) > 1)
    return history


class TestBackoff:
    def test_single_contender_wins_immediately(self):
        cm = ExponentialBackoffCM(seed=0)
        history = drive(cm, [5], rounds=3)
        assert history[0] == frozenset({5})
        assert cm.captured_by == 5

    def test_eventually_exactly_one_active(self):
        cm = ExponentialBackoffCM(seed=1)
        history = drive(cm, list(range(8)), rounds=400)
        # Property 3(1), probabilistically: the tail is a stable singleton.
        tail = history[-50:]
        assert all(len(advice) == 1 for advice in tail)
        assert len({next(iter(a)) for a in tail}) == 1

    def test_capture_lapses_when_winner_leaves(self):
        cm = ExponentialBackoffCM(seed=2)
        drive(cm, [1, 2, 3], rounds=200)
        winner = cm.captured_by
        assert winner is not None
        rest = [n for n in (1, 2, 3) if n != winner]
        history = drive(cm, rest, rounds=300)
        assert cm.captured_by in rest
        assert all(len(advice) == 1 for advice in history[-50:])

    def test_advises_only_contenders(self):
        cm = ExponentialBackoffCM(seed=3)
        for r in range(100):
            advice = cm.advise(r, [0, 1])
            assert advice <= {0, 1}
            cm.feedback(r, active=advice, collided=len(advice) > 1)

    def test_deterministic_given_seed(self):
        a = ExponentialBackoffCM(seed=9)
        b = ExponentialBackoffCM(seed=9)
        assert drive(a, [0, 1, 2], 100) == drive(b, [0, 1, 2], 100)

    def test_collision_feedback_doubles_windows(self):
        cm = ExponentialBackoffCM(seed=4)
        advice = cm.advise(0, [0, 1])
        cm.feedback(0, active=frozenset({0, 1}), collided=True)
        assert cm._window[0] == 2 and cm._window[1] == 2

    def test_invalid_max_window(self):
        import pytest
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            ExponentialBackoffCM(max_window=1)
