"""Unit tests for the oracle leader-election contention managers."""

import pytest

from repro.contention import FixedLeaderCM, LeaderElectionCM, ScriptedCM
from repro.errors import ConfigurationError


class TestLeaderElectionCM:
    def test_stable_advises_single_min_contender(self):
        cm = LeaderElectionCM(stable_round=0)
        assert cm.advise(0, [3, 1, 2]) == frozenset({1})

    def test_advice_migrates_when_leader_leaves(self):
        cm = LeaderElectionCM(stable_round=0)
        assert cm.advise(0, [1, 2]) == frozenset({1})
        assert cm.advise(1, [2]) == frozenset({2})

    def test_empty_contenders(self):
        cm = LeaderElectionCM()
        assert cm.advise(0, []) == frozenset()

    def test_chaos_all(self):
        cm = LeaderElectionCM(stable_round=10, chaos="all")
        assert cm.advise(0, [1, 2, 3]) == frozenset({1, 2, 3})
        assert cm.advise(10, [1, 2, 3]) == frozenset({1})

    def test_chaos_none(self):
        cm = LeaderElectionCM(stable_round=10, chaos="none")
        assert cm.advise(0, [1, 2]) == frozenset()

    def test_chaos_random_deterministic_by_seed(self):
        a = LeaderElectionCM(stable_round=100, chaos="random", seed=5)
        b = LeaderElectionCM(stable_round=100, chaos="random", seed=5)
        for r in range(20):
            assert a.advise(r, [0, 1, 2, 3]) == b.advise(r, [0, 1, 2, 3])

    def test_property3_eventually_one_leader(self):
        cm = LeaderElectionCM(stable_round=5, chaos="random", seed=0)
        for r in range(5, 50):
            assert len(cm.advise(r, [0, 1, 2])) == 1

    def test_property3_advises_only_contenders(self):
        cm = LeaderElectionCM(stable_round=0)
        for r in range(10):
            advice = cm.advise(r, [4, 7])
            assert advice <= {4, 7}

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            LeaderElectionCM(stable_round=-1)
        with pytest.raises(ConfigurationError):
            LeaderElectionCM(chaos="sometimes")  # type: ignore[arg-type]


class TestFixedLeaderCM:
    def test_advises_leader_when_contending(self):
        cm = FixedLeaderCM(leader=2)
        assert cm.advise(0, [1, 2, 3]) == frozenset({2})

    def test_nobody_when_leader_absent(self):
        cm = FixedLeaderCM(leader=2)
        assert cm.advise(0, [1, 3]) == frozenset()


class TestScriptedCM:
    def test_script_followed(self):
        cm = ScriptedCM({0: [1], 1: [2, 3]})
        assert cm.advise(0, [1, 2, 3]) == frozenset({1})
        assert cm.advise(1, [1, 2, 3]) == frozenset({2, 3})

    def test_missing_round_advises_nobody(self):
        cm = ScriptedCM({})
        assert cm.advise(9, [1]) == frozenset()

    def test_clipped_to_contenders(self):
        cm = ScriptedCM({0: [1, 9]})
        assert cm.advise(0, [1]) == frozenset({1})
