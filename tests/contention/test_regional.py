"""Unit tests for the regional contention manager of Section 4.2."""

import pytest

from repro.contention import RegionalCM
from repro.errors import ConfigurationError
from repro.geometry import Point


def make_cm(positions, **kwargs):
    defaults = dict(
        location=Point(0, 0),
        region_radius=0.25,
        locate=lambda node: positions[node],
    )
    defaults.update(kwargs)
    return RegionalCM(**defaults)


class TestRegionalCM:
    def test_elects_closest_contender(self):
        positions = {0: Point(0.2, 0), 1: Point(0.05, 0), 2: Point(0.1, 0)}
        cm = make_cm(positions)
        assert cm.advise(0, [0, 1, 2]) == frozenset({1})
        assert cm.leader == 1

    def test_out_of_region_contenders_ignored(self):
        positions = {0: Point(5, 5), 1: Point(0.1, 0)}
        cm = make_cm(positions)
        assert cm.advise(0, [0, 1]) == frozenset({1})

    def test_no_eligible_contenders(self):
        positions = {0: Point(5, 5)}
        cm = make_cm(positions)
        assert cm.advise(0, [0]) == frozenset()
        assert cm.leader is None

    def test_sitting_leader_retained(self):
        positions = {0: Point(0.2, 0), 1: Point(0.05, 0)}
        cm = make_cm(positions)
        cm.advise(0, [0, 1])
        # Node 0 becomes closer, but the sitting leader (1) is retained.
        positions[0] = Point(0.01, 0)
        assert cm.advise(1, [0, 1]) == frozenset({1})

    def test_reelection_when_leader_leaves_region(self):
        positions = {0: Point(0.2, 0), 1: Point(0.05, 0)}
        cm = make_cm(positions)
        cm.advise(0, [0, 1])
        positions[1] = Point(3, 3)  # leader walks away
        assert cm.advise(1, [0, 1]) == frozenset({0})

    def test_reelection_when_leader_stops_contending(self):
        positions = {0: Point(0.2, 0), 1: Point(0.05, 0)}
        cm = make_cm(positions)
        cm.advise(0, [0, 1])
        assert cm.advise(1, [0]) == frozenset({0})

    def test_unknown_location_treated_as_out_of_region(self):
        cm = RegionalCM(
            location=Point(0, 0), region_radius=1.0,
            locate=lambda node: (_ for _ in ()).throw(KeyError(node)),
        )
        assert cm.advise(0, [0]) == frozenset()

    def test_pre_stability_chaos_lets_everyone_through(self):
        positions = {0: Point(0.1, 0), 1: Point(0.2, 0)}
        cm = make_cm(positions, stable_round=5)
        assert cm.advise(0, [0, 1]) == frozenset({0, 1})
        assert len(cm.advise(5, [0, 1])) == 1

    def test_leader_age(self):
        positions = {0: Point(0.1, 0)}
        cm = make_cm(positions)
        cm.advise(3, [0])
        assert cm.leader_age(10) == 7

    def test_ties_break_by_node_id(self):
        positions = {2: Point(0.1, 0), 1: Point(0.1, 0)}
        cm = make_cm(positions)
        assert cm.advise(0, [1, 2]) == frozenset({1})

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            RegionalCM(location=Point(0, 0), region_radius=0,
                       locate=lambda n: Point(0, 0))
        with pytest.raises(ConfigurationError):
            RegionalCM(location=Point(0, 0), region_radius=1,
                       locate=lambda n: Point(0, 0), tenure=-1)
