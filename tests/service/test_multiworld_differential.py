"""The multi-world service's determinism guarantee, pinned differentially.

Eight worlds served on one loop — ticked *interleaved*, with per-world
scripted populations, a roving session hopping worlds mid-run, and
read-model traffic (watches, prefix subscriptions) mixed in — must each
stay byte-identical to an independent batch :func:`repro.run` of the
same spec with that world's accepted proposal schedule replayed.  This
is strictly stronger than the single-world differential: it proves
worlds sharing a loop (and the interning generation machinery under the
history chains) cannot perturb each other, across the
engine/channel/history/core reference-switch matrix.
"""

from __future__ import annotations

import pickle

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import EnvironmentSpec, MetricsSpec
from repro.experiment.runner import run
from repro.net import RandomLossAdversary, WindowAdversary
from repro.service import ConsensusService, ProposalLedger, ServiceConfig

pytestmark = pytest.mark.fast

#: (engine_ref, sim_fast, channel_fast) — the same switch matrix as
#: tests/net/test_engine_differential.py and the single-world suite.
MODES = [
    (False, True, True),    # the default production stack
    (False, True, False),
    (False, False, True),
    (False, False, False),
    (True, True, True),
]

WORLDS = 8
INSTANCES = 10


def _instrument(mode):
    engine_ref, sim_fast, channel_fast = mode

    def instrument(sim):
        sim.use_reference_engine = engine_ref
        sim.fast_path = sim_fast
        sim.channel.use_reference = not channel_fast
    return instrument


def _spec_factory(*, history_ref: bool = False, core_ref: bool = False):
    def make() -> ExperimentSpec:
        return ExperimentSpec(
            protocol=CHA(),
            world=ClusterWorld(n=5, rcf=24),
            environment=EnvironmentSpec(adversary=WindowAdversary(
                RandomLossAdversary(p_drop=0.25, p_false=0.15, seed=9),
                until=16)),
            workload=WorkloadSpec(instances=INSTANCES),
            metrics=MetricsSpec(
                metrics=("rounds", "total_broadcasts", "decided_instances"),
                invariants=("all",),
            ),
            use_reference_history=history_ref,
            use_reference_core=core_ref,
        )
    return make


def _observable(result) -> bytes:
    return pickle.dumps((result.trace, result.outputs, result.proposals,
                         result.metrics, result.invariants,
                         result.violation_context))


def _serve_worlds(spec_factory, *, mode=(False, True, True),
                  worlds: int = WORLDS, rounds_per_tick: int = 3):
    """Serve ``worlds`` interleaved worlds under scripted populations.

    Every world gets one closed-loop client (seed proposals before
    round 1, reactions to its own odd-instance decisions); even worlds
    additionally get a node-targeted proposal.  A roving session starts
    on w1 watching instance 2, hops to w3 mid-run (``attach_world``),
    subscribes to a value prefix there, and lands one proposal — so the
    read models and the session re-binding run *during* the measured
    interleaving.  Returns ``(observables, schedules)`` by world name.
    """
    service = ConsensusService(
        spec_factory(),
        ServiceConfig(rounds_per_tick=rounds_per_tick, worlds=worlds),
        instrument=_instrument(mode),
    )
    names = [f"w{i + 1}" for i in range(worlds)]
    clients = {}
    for index, name in enumerate(names):
        client = service.connect(client=f"script-{name}", world=name)
        client.drain()  # the catch-up welcome
        client.propose(f"{name}.seed")
        if index % 2 == 1:
            client.propose(f"{name}.targeted", instance=2, node=index % 5)
        clients[name] = client
    rover = service.connect(client="rover", world="w1")
    rover.drain()
    rover.watch_instance(2)
    hopped = worlds < 3  # nowhere to hop in tiny configurations
    while any(not entry.driver.complete for entry in service.registry):
        service.tick_all()
        for name, client in clients.items():
            driver = service.registry.get(name).driver
            for event in client.drain():
                if (event["type"] == "decision"
                        and event["instance"] % 2 == 1
                        and driver.ledger.next_open <= INSTANCES):
                    client.propose(f"{name}.react.{event['instance']}")
        if (not hopped
                and service.registry.get("w1").driver.current_round >= 9):
            rover.attach_world("w3")
            rover.drain()
            rover.subscribe_prefix("w3.react")
            if (service.registry.get("w3").driver.ledger.next_open
                    <= INSTANCES):
                rover.propose("w3.rover")
            hopped = True
        rover.drain()
    assert hopped, "the rover must re-bind while worlds are mid-run"
    rover.close()
    observables = {entry.name: _observable(entry.driver.result)
                   for entry in service.registry}
    schedules = {entry.name: entry.driver.ledger.schedule()
                 for entry in service.registry}
    return observables, schedules


def _batch(spec_factory, schedule, *, mode=(False, True, True)) -> bytes:
    """The equivalent batch run: one world's accepted schedule replayed."""
    spec = spec_factory().override(
        protocol__proposer_factory=ProposalLedger.scripted(schedule))
    return _observable(run(spec, instrument=_instrument(mode)))


@pytest.mark.parametrize("mode", MODES,
                         ids=["default", "ref-channel", "no-fastpath",
                              "ref-stack", "ref-engine"])
def test_eight_worlds_each_equal_batch_across_switches(mode):
    spec_factory = _spec_factory()
    observables, schedules = _serve_worlds(spec_factory, mode=mode)
    assert len(observables) == WORLDS
    # The scripts diverge per world (different seed values, different
    # reaction instants), so this is 8 genuinely distinct replays.
    assert len(set(schedules.values())) > 1
    for name in observables:
        assert schedules[name], f"{name}: the script must land proposals"
        assert observables[name] == _batch(
            spec_factory, schedules[name], mode=mode), name


@pytest.mark.parametrize(
    "history_ref,core_ref",
    [(True, False), (False, True), (True, True)],
    ids=["reference-history", "reference-core", "reference-both"])
def test_worlds_equal_batch_with_history_and_core_switches(
        history_ref, core_ref):
    spec_factory = _spec_factory(history_ref=history_ref, core_ref=core_ref)
    observables, schedules = _serve_worlds(spec_factory, worlds=4)
    for name in observables:
        assert observables[name] == _batch(spec_factory, schedules[name]), \
            name


def test_interleaved_worlds_match_a_solo_served_world():
    """A world served alone and the same scripted world served amid
    seven siblings produce identical bytes — the interleaving (and the
    other worlds' traffic) is invisible to each world."""
    spec_factory = _spec_factory()
    solo, solo_schedules = _serve_worlds(spec_factory, worlds=1)
    many, many_schedules = _serve_worlds(spec_factory)
    # w1 runs the identical script in both configurations (the rover
    # starts on w1 in both and proposes only after hopping away).
    assert solo_schedules["w1"] == many_schedules["w1"]
    assert solo["w1"] == many["w1"]


def test_lazily_created_world_replays_batch():
    """A world born mid-run via ``create_world`` (with a nodes override)
    replays byte-identically against the template spec with the same
    override — lazy creation is not a special world."""
    spec_factory = _spec_factory()
    service = ConsensusService(
        spec_factory(), ServiceConfig(rounds_per_tick=3, worlds=1))
    pilot = service.connect(client="pilot")
    pilot.drain()
    # Let w1 get ahead so the new world is born into a half-run service.
    for _ in range(3):
        service.tick_all()
    pilot.create_world(world="late", nodes=4, request_id="c")
    created = [e for e in pilot.drain() if e["type"] == "world-created"]
    assert created and created[0]["world"] == "late"
    pilot.attach_world("late")
    pilot.drain()
    pilot.propose("late.seed")
    while any(not entry.driver.complete for entry in service.registry):
        service.tick_all()
    late = service.registry.get("late")
    batch_spec = spec_factory().override(
        world__n=4,
        protocol__proposer_factory=ProposalLedger.scripted(
            late.driver.ledger.schedule()))
    assert _observable(late.driver.result) == _observable(run(batch_spec))
