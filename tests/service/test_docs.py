"""The doc-drift gate: ``docs/WIRE_PROTOCOL.md`` is pinned to the code.

The wire reference's op/event tables are parsed back out of the
markdown and compared *field-for-field* against
:func:`repro.service.events.catalog` — the same declarative tables the
validators and ``python -m repro.service --describe`` run on.  Renaming
a field, flipping its requiredness, rewording its doc string, or adding
an op without touching the markdown fails here with a message naming
the stale row.  A light link check over ``docs/`` and ``README.md``
rides along so the docs job catches dead cross-references too.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.service import events

pytestmark = [pytest.mark.fast, pytest.mark.docs]

REPO = Path(__file__).resolve().parents[2]
WIRE_DOC = REPO / "docs" / "WIRE_PROTOCOL.md"

_SECTION = re.compile(r"^### `([\w-]+)`$", re.MULTILINE)
_CELL_SPLIT = re.compile(r"(?<!\\)\|")


def _parse_sections(heading: str) -> dict[str, dict]:
    """Extract the ``### `name``` sections under one ``## heading``.

    Returns ``{name: {"doc": str, "rows": [(name, type, required)...],
    "docs": {field: doc}, "elicits": [event, ...] | None}}``.
    """
    text = WIRE_DOC.read_text()
    start = text.index(f"## {heading}")
    # the next second-level heading closes the region
    tail = text[start + 3:]
    end = tail.index("\n## ")
    region = text[start : start + 3 + end]

    sections: dict[str, dict] = {}
    matches = list(_SECTION.finditer(region))
    for index, match in enumerate(matches):
        body_end = (matches[index + 1].start()
                    if index + 1 < len(matches) else len(region))
        body = region[match.end():body_end]
        doc_lines, rows, field_docs, elicits = [], [], {}, None
        for line in body.splitlines():
            line = line.strip()
            if line.startswith("| ---") or line.startswith("| field"):
                continue
            if line.startswith("|"):
                cells = [c.strip().replace("\\|", "|")
                         for c in _CELL_SPLIT.split(line)[1:-1]]
                name = cells[0].strip("`")
                rows.append((name, cells[1].strip("`"), cells[2]))
                field_docs[name] = cells[3]
            elif line.startswith("Elicits:"):
                elicits = [m.group(1) for m in
                           re.finditer(r"`([\w-]+)`", line)]
            elif line and not line.startswith("*("):
                doc_lines.append(line)
        sections[match.group(1)] = {
            "doc": " ".join(doc_lines),
            "rows": rows,
            "docs": field_docs,
            "elicits": elicits,
        }
    return sections


def _expect_rows(fields: list[dict]) -> list[tuple[str, str, str]]:
    return [(f["name"], f["type"], "yes" if f["required"] else "no")
            for f in fields]


def test_wire_doc_exists_and_names_the_schema_version():
    text = WIRE_DOC.read_text()
    catalog = events.catalog()
    assert f"**{catalog['schema']}**" in text, \
        "docs/WIRE_PROTOCOL.md must state the current schema version"
    assert str(catalog["max_line_bytes"]) in text
    # The envelope contract is quoted verbatim from the catalog.
    assert catalog["envelope"]["request"] in text
    assert catalog["envelope"]["event"] in text


def test_every_op_table_matches_the_catalog():
    catalog = events.catalog()
    documented = _parse_sections("Request ops")
    assert set(documented) == set(catalog["ops"]), (
        "op sections out of sync: "
        f"doc-only={sorted(set(documented) - set(catalog['ops']))} "
        f"code-only={sorted(set(catalog['ops']) - set(documented))}")
    for op, spec in catalog["ops"].items():
        section = documented[op]
        assert section["rows"] == _expect_rows(spec["fields"]), \
            f"op {op!r}: field table drifted from events.OPS"
        for field in spec["fields"]:
            assert section["docs"][field["name"]] == field["doc"], \
                f"op {op!r}, field {field['name']!r}: doc text drifted"
        assert section["elicits"] == spec["events"], \
            f"op {op!r}: 'Elicits' line drifted from events.OPS"
        assert section["doc"] == spec["doc"], \
            f"op {op!r}: section prose drifted from events.OPS"


def test_every_event_table_matches_the_catalog():
    catalog = events.catalog()
    documented = _parse_sections("Events")
    assert set(documented) == set(catalog["events"]), (
        "event sections out of sync: "
        f"doc-only={sorted(set(documented) - set(catalog['events']))} "
        f"code-only={sorted(set(catalog['events']) - set(documented))}")
    for name, spec in catalog["events"].items():
        section = documented[name]
        assert section["rows"] == _expect_rows(spec["fields"]), \
            f"event {name!r}: field table drifted from events.EVENTS"
        for field in spec["fields"]:
            assert section["docs"][field["name"]] == field["doc"], \
                f"event {name!r}, field {field['name']!r}: doc drifted"
        assert section["doc"] == spec["doc"], \
            f"event {name!r}: section prose drifted from events.EVENTS"


def test_reference_switch_doc_names_every_switch():
    """docs/REFERENCE_SWITCHES.md must cover the full switch family —
    the env var *and* the spec field of each one."""
    text = (REPO / "docs" / "REFERENCE_SWITCHES.md").read_text()
    for env in ("REPRO_REFERENCE_CHANNEL", "REPRO_REFERENCE_HISTORY",
                "REPRO_REFERENCE_ENGINE", "REPRO_REFERENCE_CORE",
                "REPRO_REFERENCE_VI", "REPRO_SHARDS"):
        assert env in text, f"switch {env} missing from the table"
    for field in ("use_reference_history", "use_reference_engine",
                  "use_reference_core", "use_reference_vi", "shards"):
        assert f"`{field}`" in text, f"spec field {field} missing"


_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)]*)?\)")


def test_markdown_links_resolve():
    """Relative links in README.md and docs/ must point at real files."""
    dead = []
    for doc in [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]:
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not (doc.parent / target).exists():
                dead.append(f"{doc.relative_to(REPO)} -> {target}")
    assert not dead, f"dead relative links: {dead}"
