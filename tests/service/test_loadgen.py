"""The load harness: seeded client populations and their bench wiring."""

from __future__ import annotations

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.bench import ALL_SCENARIOS, LoadScenario, run_scenario, scenario_by_name
from repro.bench.history import history_entry
from repro.bench.runner import run_benchmarks
from repro.experiment import MetricsSpec
from repro.service import LoadProfile, ServiceConfig, percentiles, run_load_sync

pytestmark = pytest.mark.fast


def _spec(instances: int = 40, n: int = 8) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=n),
        workload=WorkloadSpec(instances=instances),
        metrics=MetricsSpec(metrics=("rounds",),
                            invariants=("agreement", "validity")),
        keep_trace=False,
    )


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------

def test_percentiles_empty_and_singleton():
    assert percentiles([]) == {"count": 0}
    single = percentiles([0.5])
    assert single["p50"] == single["p99"] == single["max"] == 0.5
    assert single["count"] == 1


def test_percentiles_nearest_rank():
    samples = [float(i) for i in range(1, 101)]  # 1..100
    result = percentiles(samples)
    assert result["p50"] == 50.0
    assert result["p90"] == 90.0
    assert result["p99"] == 99.0
    assert result["max"] == 100.0 and result["count"] == 100


def test_load_profile_validation():
    with pytest.raises(ValueError, match="unknown load pattern"):
        LoadProfile(sessions=10, pattern="stampede")
    with pytest.raises(ValueError, match="sessions"):
        LoadProfile(sessions=0)


# ----------------------------------------------------------------------
# Populations
# ----------------------------------------------------------------------

def test_flash_crowd_closed_loop_accounting():
    report = run_load_sync(
        _spec(), LoadProfile(sessions=60, pattern="flash",
                             proposals_per_session=2))
    assert report["sessions_opened"] == 60
    assert report["peak_sessions"] == 60  # flash: everyone attached at once
    assert report["proposals_submitted"] == 120
    assert report["proposals_accepted"] == 120
    assert report["decisions_observed"] == 120
    assert report["unserved"] == 0
    assert report["decision_latency_s"]["count"] == 120
    assert 0 < report["decision_latency_s"]["p50"] \
        <= report["decision_latency_s"]["p99"] \
        <= report["decision_latency_s"]["max"]
    assert report["proposals_per_sec"] > 0
    assert report["invariants"] == {"agreement": "ok", "validity": "ok"}
    assert report["rounds"] == 120  # the world always completes


def test_churn_reconnects_are_seeded():
    def go(seed):
        return run_load_sync(
            _spec(instances=60),
            LoadProfile(sessions=40, pattern="churn",
                        proposals_per_session=3, churn_rate=0.5, seed=seed))

    first, again = go(3), go(3)
    assert first["reconnects"] == again["reconnects"] > 0
    assert first["sessions_opened"] == again["sessions_opened"] \
        == 40 + first["reconnects"]
    assert first["decisions_observed"] == 120


def test_ramp_staggers_arrivals():
    report = run_load_sync(
        _spec(instances=30),
        LoadProfile(sessions=20, pattern="ramp", ramp_s=0.05,
                    proposals_per_session=1),
        ServiceConfig(tick_interval=0.005),
    )
    assert report["sessions_opened"] == 20
    assert report["profile"]["pattern"] == "ramp"
    # On a paced world, arrivals spread out: the flash-crowd peak is
    # not guaranteed, but everyone is eventually served.
    assert report["decisions_observed"] + report["unserved"] == 20


def test_world_completion_bounds_unserved_proposals():
    # 2 instances cannot serve 30 sessions x 3 proposals: the harness
    # must report the shortfall rather than hang.
    report = run_load_sync(
        _spec(instances=2),
        LoadProfile(sessions=30, pattern="flash", proposals_per_session=3))
    assert report["decisions_observed"] < 90
    assert report["unserved"] > 0
    assert report["decisions_observed"] + report["unserved"] \
        + report["proposals_rejected"] >= 90


# ----------------------------------------------------------------------
# Bench wiring
# ----------------------------------------------------------------------

TINY_LOAD = LoadScenario(
    name="tiny-svc", family="service", n=25,
    description="unit-test load scenario",
    make_load=lambda: (
        _spec(instances=12, n=5),
        LoadProfile(sessions=25, pattern="flash"),
        ServiceConfig(queue_limit=64, decision_log_limit=8),
    ),
)


def test_run_scenario_dispatches_load_scenarios():
    result = run_scenario(TINY_LOAD, repeats=2, reference=True)
    assert result.name == "tiny-svc" and result.family == "service"
    assert result.n == 25 and result.gated is False
    assert result.rounds == 36 and result.rounds_per_sec > 0
    # No reference path exists for a served world.
    assert result.reference_wall_s is None
    assert result.speedup_vs_reference is None
    extras = result.extras
    assert extras["sessions"] == 25
    assert extras["peak_sessions"] == 25
    assert extras["proposals_accepted"] == 25
    assert extras["decision_latency_s"]["count"] == 25
    assert extras["dropped_events"] == 0
    assert extras["invariants"] == {"agreement": "ok", "validity": "ok"}


def test_load_scenarios_flow_into_reports_and_history(monkeypatch):
    monkeypatch.setattr("repro.bench.scenarios.ALL_SCENARIOS", (TINY_LOAD,))
    report = run_benchmarks([TINY_LOAD], repeats=1, reference=True,
                            machine_class="unit-test-box")
    row = report["results"]["tiny-svc"]
    assert row["extras"]["decision_latency_s"]["count"] == 25
    digest = history_entry(report)["results"]["tiny-svc"]
    assert digest["rounds_per_sec"] > 0
    assert digest["speedup_vs_reference"] is None
    assert digest["gated"] is False


def test_svc_scenarios_registered():
    names = {s.name for s in ALL_SCENARIOS}
    assert {"svc-smoke", "svc-churn-500", "svc-ramp-500",
            "svc-flash-1k"} <= names
    smoke = scenario_by_name("svc-smoke")
    assert isinstance(smoke, LoadScenario)
    assert smoke.quick and not smoke.gated
    assert smoke.n >= 50  # n is the concurrent-session count
    headliner = scenario_by_name("svc-flash-1k")
    assert headliner.n == 1000
    spec, profile, config = headliner.make_load()
    assert profile.sessions == 1000 and profile.pattern == "flash"
    # Load scenarios are deterministic descriptions: fresh builds agree.
    spec2, profile2, config2 = headliner.make_load()
    assert (profile, config) == (profile2, config2)
    assert spec == spec2


# ----------------------------------------------------------------------
# Bounded decision waits (evicted-event protection)
# ----------------------------------------------------------------------

def test_load_profile_decision_wait_validation():
    with pytest.raises(ValueError, match="decision_wait_s"):
        LoadProfile(sessions=1, decision_wait_s=0.0)


class _StubClient:
    """Replays scripted events, then goes silent forever."""

    def __init__(self, events):
        import asyncio

        self._events = list(events)
        self._silence = asyncio.Event()
        self.dropped = 0

    async def next_event(self):
        if self._events:
            return self._events.pop(0)
        await self._silence.wait()  # nothing will ever arrive

    def close(self):
        pass


def _await(client, instance, wait_s):
    import asyncio

    from repro.service.loadgen import _await_decision

    return asyncio.run(_await_decision(client, instance, wait_s))


def test_await_decision_times_out_when_event_never_arrives():
    from repro.service.loadgen import _TIMED_OUT

    # The decision for instance 3 was evicted; only instance 7's remains.
    client = _StubClient([{"type": "decision", "instance": 7}])
    assert _await(client, 3, 0.05) is _TIMED_OUT


def test_await_decision_returns_matching_decision():
    client = _StubClient([
        {"type": "decision", "instance": 1},
        {"type": "decision", "instance": 2},
    ])
    event = _await(client, 2, 5.0)
    assert event == {"type": "decision", "instance": 2}


def test_await_decision_none_on_world_complete():
    client = _StubClient([{"type": "world-complete"}])
    assert _await(client, 0, 5.0) is None


def test_evicted_decision_counts_dropped_sample_not_hang():
    """queue_limit=1 with two decisions per tick evicts the first
    decision in the same synchronous burst that publishes the second —
    the closed-loop client must time out and account the sample instead
    of waiting for an event that can never arrive."""
    report = run_load_sync(
        _spec(instances=30),
        LoadProfile(sessions=1, proposals_per_session=1,
                    decision_wait_s=0.4),
        ServiceConfig(queue_limit=1, rounds_per_tick=6, tick_interval=0.05),
    )
    assert report["dropped_samples"] == 1
    assert report["decisions_observed"] == 0
    assert report["decision_latency_s"] == {"count": 0}
    assert report["dropped_events"] >= 1  # the eviction really happened
    assert report["unserved"] == 0  # accounted as dropped, not unserved


# ----------------------------------------------------------------------
# Percentile properties
# ----------------------------------------------------------------------

def _oracle_percentile(samples: list[float], p: float) -> float:
    """Brute-force nearest-rank: smallest x with rank(x) >= p*count."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(p * len(ordered) + 0.5) - 1))
    # Walk instead of index: the oracle re-derives the answer by counting.
    target = rank + 1
    seen = 0
    for x in ordered:
        seen += 1
        if seen >= target:
            return x
    return ordered[-1]


class TestPercentileProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    _samples = st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200)
    _points = st.lists(st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False),
                       min_size=1, max_size=5)

    @given(samples=_samples, points=_points)
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force_oracle(self, samples, points):
        result = percentiles(samples, points=tuple(points))
        for p in points:
            assert result[f"p{int(p * 100)}"] == _oracle_percentile(samples, p)
        assert result["max"] == max(samples)
        assert result["count"] == len(samples)
        assert result["mean"] == sum(sorted(samples)) / len(samples)

    @given(samples=_samples)
    @settings(max_examples=100, deadline=None)
    def test_edges_and_monotonicity(self, samples):
        result = percentiles(samples, points=(0.0, 0.5, 1.0))
        ordered = sorted(samples)
        assert result["p0"] == ordered[0]  # p0 is the minimum
        assert result["p100"] == ordered[-1] == result["max"]
        assert result["p0"] <= result["p50"] <= result["p100"]
        # Every reported percentile is an actual sample (nearest rank
        # never interpolates).
        assert {result["p0"], result["p50"], result["p100"]} <= set(ordered)

    def test_single_sample_all_points_collapse(self):
        result = percentiles([3.25], points=(0.0, 0.25, 0.5, 0.99, 1.0))
        for key in ("p0", "p25", "p50", "p99", "p100"):
            assert result[key] == 3.25

    def test_ties_report_the_tied_value(self):
        result = percentiles([1.0] * 7 + [2.0] * 3, points=(0.5, 0.7, 0.9))
        assert result["p50"] == 1.0
        assert result["p70"] == 1.0  # rank 7 of 10 is the last 1.0
        assert result["p90"] == 2.0
