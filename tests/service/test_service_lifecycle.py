"""Session lifecycle edges: catch-up snapshots, leak-free detach, and
the slow-consumer drop policy.

These drive :class:`WorldDriver.tick` synchronously (the asyncio clock
only schedules ticks; it never changes what they compute), so every
assertion is about session-layer state machines rather than timing.
"""

from __future__ import annotations

import gc
import weakref

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.errors import ServiceError
from repro.experiment import MetricsSpec
from repro.service import ConsensusService, ServiceConfig

pytestmark = pytest.mark.fast


def _spec(instances: int = 10, n: int = 5) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=n),
        workload=WorkloadSpec(instances=instances),
        metrics=MetricsSpec(metrics=("rounds",), invariants=("agreement",)),
        keep_trace=False,
    )


def _service(*, instances: int = 10, queue_limit: int = 1024,
             max_sessions: int = 10_000) -> ConsensusService:
    return ConsensusService(_spec(instances=instances), ServiceConfig(
        queue_limit=queue_limit, max_sessions=max_sessions))


# ----------------------------------------------------------------------
# Attach: the catch-up snapshot
# ----------------------------------------------------------------------

def test_attach_after_round_n_sees_consistent_snapshot():
    service = _service(instances=10)
    witness = service.connect()   # attached from round 0
    witness.drain()
    for _ in range(4):            # 4 ticks x 3 rounds = 4 instances
        service.driver.tick()

    late = service.connect()
    welcome = late.next_event_nowait()
    assert welcome["type"] == "welcome" and welcome["seq"] == 0
    assert welcome["session"] == late.session_id
    assert welcome["round"] == service.driver.current_round == 12
    assert welcome["next_instance"] == service.driver.ledger.next_open
    assert welcome["decided_instances"] == 4
    assert welcome["complete"] is False

    # The snapshot's recent decisions are exactly the events a
    # from-the-start subscriber received (minus its own seq stamps).
    witnessed = [{k: v for k, v in event.items() if k != "seq"}
                 for event in witness.drain() if event["type"] == "decision"]
    assert welcome["recent_decisions"] == witnessed
    assert [d["instance"] for d in welcome["recent_decisions"]] == [1, 2, 3, 4]

    # From here on, both sessions stream identical decision events.
    service.driver.tick()
    strip = lambda events: [{k: v for k, v in e.items() if k != "seq"}
                            for e in events]
    assert strip(late.drain()) == strip(witness.drain())


def test_attach_after_completion_sees_complete_snapshot():
    service = _service(instances=4)
    while not service.driver.complete:
        service.driver.tick()
    post = service.connect()
    welcome = post.next_event_nowait()
    assert welcome["complete"] is True
    assert welcome["decided_instances"] == 4
    with pytest.raises(ServiceError, match="world has completed"):
        service.driver.submit("too-late")


def test_snapshot_ring_buffer_bounds_catchup():
    service = ConsensusService(_spec(instances=10), ServiceConfig(
        decision_log_limit=3))
    for _ in range(6):
        service.driver.tick()
    welcome = service.connect().next_event_nowait()
    assert welcome["decided_instances"] == 6
    assert [d["instance"] for d in welcome["recent_decisions"]] == [4, 5, 6]


# ----------------------------------------------------------------------
# Detach: no leaked queues or sessions
# ----------------------------------------------------------------------

def test_detach_mid_instance_leaks_nothing():
    service = _service()
    keep = service.connect()
    doomed = service.connect()
    service.driver.tick()  # both sessions now hold events

    session_ref = weakref.ref(doomed.session)
    queue_ref = weakref.ref(doomed.session.queue)
    assert service.sessions.active == 2
    assert service.driver.bus.subscribers == 2

    doomed.close()
    assert service.sessions.active == 1
    assert service.driver.bus.subscribers == 1
    del doomed
    gc.collect()
    assert session_ref() is None, "closed session still strongly referenced"
    assert queue_ref() is None, "closed session's queue still referenced"

    # The survivor still streams; the world never noticed.
    service.driver.tick()
    assert any(e["type"] == "decision" for e in keep.drain())


def test_close_is_idempotent_and_post_close_requests_fail():
    service = _service()
    client = service.connect()
    client.close()
    client.close()  # no-op
    with pytest.raises(ServiceError, match="closed"):
        client.ping()
    assert service.sessions.active == 0


def test_bye_closes_in_process_session():
    service = _service()
    client = service.connect()
    client.drain()
    client.bye()
    assert client.closed
    assert service.sessions.active == 0
    # The farewell event was enqueued before the close.
    assert [e["type"] for e in client.drain()] == ["bye"]


def test_session_limit_enforced_and_freed_by_detach():
    service = _service(max_sessions=2)
    a = service.connect()
    service.connect()
    with pytest.raises(ServiceError, match="session limit"):
        service.connect()
    a.close()
    service.connect()  # the slot freed by the detach is reusable
    assert service.sessions.active == 2
    assert service.sessions.opened == 3  # the rejected attempt never opened


# ----------------------------------------------------------------------
# Backpressure: the slow-consumer drop policy
# ----------------------------------------------------------------------

def test_slow_consumer_drops_oldest_without_stalling_the_clock():
    service = _service(instances=10, queue_limit=4)
    fast = service.connect()
    slow = service.connect()  # never reads until the end

    rounds = 0
    while not service.driver.complete:
        service.driver.tick()
        rounds += 3
        fast.drain()  # the fast consumer keeps up

    # The world clock never stalled on the slow consumer.
    assert service.driver.current_round == 30
    assert service.driver.decisions_published == 10

    # The fast session lost nothing.
    assert fast.dropped == 0

    # The slow session kept only the newest queue_limit events, dropped
    # the rest, and the gap is visible as a seq jump.
    assert slow.dropped > 0
    backlog = slow.drain()
    assert len(backlog) == 4
    seqs = [event["seq"] for event in backlog]
    assert seqs == sorted(seqs)
    # welcome=0 plus 10 decisions plus world-complete = 12 events total;
    # the survivors are the newest 4.
    assert seqs == [8, 9, 10, 11]
    assert slow.dropped == 8
    assert backlog[-1]["type"] == "world-complete"


def test_seq_stamps_are_per_session_and_gapless_for_fast_consumers():
    service = _service(instances=6)
    early = service.connect()
    service.driver.tick()
    late = service.connect()
    while not service.driver.complete:
        service.driver.tick()
    early_seqs = [e["seq"] for e in early.drain()]
    late_seqs = [e["seq"] for e in late.drain()]
    assert early_seqs == list(range(len(early_seqs)))
    assert late_seqs == list(range(len(late_seqs)))
    assert len(early_seqs) > len(late_seqs)  # the late session saw less


def test_totals_aggregate_open_sessions():
    service = _service(instances=4, queue_limit=2)
    service.connect()
    service.connect()
    while not service.driver.complete:
        service.driver.tick()
    totals = service.sessions.totals()
    assert totals["active"] == 2 and totals["peak"] == 2
    assert totals["events_dropped"] > 0  # tiny queues, nobody reading
