"""The wire layer: request validation, canonical event encoding, the
TCP transport end-to-end, graceful shutdown, and the CLI."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import MetricsSpec
from repro.service import (
    MAX_LINE_BYTES,
    ConsensusService,
    ServiceConfig,
    WireError,
    decode_event,
    encode_event,
    parse_request,
    validate_request,
)
from repro.service import events
from repro.service.__main__ import main as service_main

pytestmark = pytest.mark.fast


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("line,message", [
    (b"not json", "not valid JSON"),
    (b"[1, 2]", "must be a JSON object"),
    (b'{"op": "nope"}', "unknown op"),
    (b'{"value": "x"}', "unknown op"),
    (b'{"op": "propose"}', "needs a 'value' field"),
    (b'{"op": "propose", "value": 7}', "must be str"),
    (b'{"op": "propose", "value": "x", "instance": 0}', "must be >= 1"),
    (b'{"op": "propose", "value": "x", "instance": true}', "must be int"),
    (b'{"op": "propose", "value": "x", "node": -1}', "non-negative"),
    (b'{"op": "propose", "value": "x", "id": 9}', "must be str"),
    (b'{"op": "hello", "client": 5}', "must be str"),
    (b'{"op": "hello", "world": "no spaces"}', "invalid world name"),
    (b'{"op": "create_world", "world": "-bad"}', "invalid world name"),
    (b'{"op": "create_world", "nodes": 0}', "nodes must be >= 1"),
    (b'{"op": "create_world", "instances": true}', "must be int"),
    (b'{"op": "attach_world"}', "needs a 'world' field"),
    (b'{"op": "watch_instance"}', "needs an? 'instance' field"),
    (b'{"op": "watch_instance", "instance": 0}', "must be >= 1"),
    (b'{"op": "unwatch_instance", "instance": "x"}', "must be int"),
    (b'{"op": "subscribe_prefix"}', "needs a 'prefix' field"),
    (b'{"op": "subscribe_prefix", "prefix": 1}', "must be str"),
])
def test_parse_request_rejects_malformed(line, message):
    with pytest.raises(WireError, match=message):
        parse_request(line)


def test_parse_request_accepts_every_op():
    assert parse_request(b'{"op": "hello"}')["op"] == "hello"
    assert parse_request(b'{"op": "hello", "world": "w2"}')["world"] == "w2"
    assert parse_request('{"op": "ping"}')["op"] == "ping"
    assert parse_request(b'{"op": "stats"}')["op"] == "stats"
    assert parse_request(b'{"op": "bye"}')["op"] == "bye"
    assert parse_request(b'{"op": "worlds"}')["op"] == "worlds"
    assert parse_request(b'{"op": "create_world"}')["op"] == "create_world"
    assert parse_request(
        b'{"op": "create_world", "world": "lab.2", "nodes": 5, '
        b'"instances": 9}')["world"] == "lab.2"
    assert parse_request(
        b'{"op": "attach_world", "world": "w1"}')["world"] == "w1"
    assert parse_request(
        b'{"op": "watch_instance", "instance": 4}')["instance"] == 4
    assert parse_request(
        b'{"op": "unwatch_instance", "instance": 4}')["instance"] == 4
    assert parse_request(
        b'{"op": "subscribe_prefix", "prefix": ""}')["prefix"] == ""
    request = parse_request(
        b'{"op": "propose", "value": "v", "instance": 3, "node": 0, '
        b'"id": "r1"}')
    assert request["instance"] == 3 and request["node"] == 0
    # Nothing above misses an op the catalog documents.
    covered = {"hello", "ping", "stats", "bye", "worlds", "create_world",
               "attach_world", "watch_instance", "unwatch_instance",
               "subscribe_prefix", "propose"}
    assert covered == set(events.OPS)


def test_parse_request_enforces_line_ceiling():
    huge = json.dumps({"op": "propose", "value": "x" * MAX_LINE_BYTES})
    with pytest.raises(WireError, match="exceeds"):
        parse_request(huge.encode())


def test_validate_request_rejects_non_dict():
    with pytest.raises(WireError, match="JSON object"):
        validate_request(["op", "ping"])


def test_event_encoding_is_canonical_ndjson():
    event = {"type": "decision", "instance": 3, "value": "v"}
    encoded = encode_event(event)
    assert encoded.endswith(b"\n") and encoded.count(b"\n") == 1
    # Key order never leaks into the bytes.
    assert encode_event({"value": "v", "instance": 3, "type": "decision"}) \
        == encoded
    assert decode_event(encoded) == event
    with pytest.raises(WireError, match="'type'"):
        decode_event(b'{"no": "type"}')


# ----------------------------------------------------------------------
# TCP transport end-to-end
# ----------------------------------------------------------------------

def _spec(instances: int = 6) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=CHA(), world=ClusterWorld(n=5),
        workload=WorkloadSpec(instances=instances),
        metrics=MetricsSpec(metrics=("rounds",), invariants=("agreement",)),
        keep_trace=False,
    )


class _TcpClient:
    """Minimal NDJSON test client."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader, self.writer = reader, writer

    @classmethod
    async def open(cls, service: ConsensusService) -> "_TcpClient":
        host, port = service.tcp_address
        return cls(*await asyncio.open_connection(host, port))

    async def send(self, **request) -> None:
        self.writer.write((json.dumps(request) + "\n").encode())
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=5)
        assert line, "server closed the connection unexpectedly"
        return decode_event(line)

    async def recv_type(self, wanted: str) -> dict:
        while True:
            event = await self.recv()
            if event["type"] == wanted:
                return event

    async def close(self) -> None:
        self.writer.close()
        await self.writer.wait_closed()


def test_tcp_session_full_conversation():
    async def scenario():
        service = ConsensusService(_spec(), ServiceConfig())
        await service.serve_tcp()
        client = await _TcpClient.open(service)

        # Requests before hello are rejected without opening a session.
        await client.send(op="ping")
        event = await client.recv()
        assert event["type"] == "error" and "hello" in event["reason"]
        assert service.sessions.active == 0

        await client.send(op="hello", client="wire-test")
        welcome = await client.recv()
        assert welcome["type"] == "welcome" and welcome["round"] == 0
        assert service.sessions.active == 1

        # A second hello on the same connection is an error event, not a
        # second session.
        await client.send(op="hello")
        event = await client.recv()
        assert event["type"] == "error" and "already open" in event["reason"]
        assert service.sessions.active == 1

        # Malformed lines produce error events mid-session too.
        await client.send(op="propose")
        event = await client.recv()
        assert event["type"] == "error" and "value" in event["reason"]

        await client.send(op="propose", value="tcp-v", id="r1")
        ack = await client.recv()
        assert ack["type"] == "ack" and ack["id"] == "r1"

        service.start_world()
        decision = await client.recv_type("decision")
        assert decision["instance"] == ack["instance"]
        assert decision["value"] == "tcp-v"
        assert decision["agreement"] == "ok"

        await client.send(op="stats")
        stats = await client.recv_type("stats")
        assert stats["proposals_accepted"] == 1

        await client.send(op="bye")
        farewell = await client.recv_type("bye")
        assert farewell["type"] == "bye"
        await client.close()

        await service.run_world()
        await service.shutdown()
        assert service.sessions.active == 0

    asyncio.run(scenario())


def test_tcp_abrupt_disconnect_cleans_up():
    async def scenario():
        service = ConsensusService(_spec(), ServiceConfig())
        await service.serve_tcp()
        client = await _TcpClient.open(service)
        await client.send(op="hello")
        await client.recv_type("welcome")
        assert service.sessions.active == 1
        await client.close()  # no bye: the death of a client
        for _ in range(50):
            if service.sessions.active == 0:
                break
            await asyncio.sleep(0.01)
        assert service.sessions.active == 0
        await service.shutdown()

    asyncio.run(scenario())


def test_tcp_shutdown_notifies_connected_sessions():
    async def scenario():
        service = ConsensusService(_spec(), ServiceConfig())
        await service.serve_tcp()
        client = await _TcpClient.open(service)
        await client.send(op="hello")
        await client.recv_type("welcome")
        await service.shutdown("maintenance window")
        event = await client.recv_type("shutdown")
        assert event["reason"] == "maintenance window"
        assert (await client.reader.readline()) == b""  # then EOF
        assert service.sessions.active == 0

    asyncio.run(scenario())


def test_tcp_session_limit_rejects_connection():
    async def scenario():
        service = ConsensusService(_spec(), ServiceConfig(max_sessions=1))
        await service.serve_tcp()
        first = await _TcpClient.open(service)
        await first.send(op="hello")
        await first.recv_type("welcome")
        second = await _TcpClient.open(service)
        await second.send(op="hello")
        event = await second.recv()
        assert event["type"] == "error" and "session limit" in event["reason"]
        assert (await second.reader.readline()) == b""  # connection closed
        await first.close()
        await service.shutdown()

    asyncio.run(scenario())


def test_tcp_multiworld_conversation():
    """World ops over the wire: named hello, create/attach/worlds, a
    watch riding along, an unknown world rejected pre-session."""
    async def scenario():
        service = ConsensusService(_spec(), ServiceConfig(worlds=2))
        await service.serve_tcp()

        # hello naming an unknown world is rejected before a session.
        stranger = await _TcpClient.open(service)
        await stranger.send(op="hello", world="w9")
        event = await stranger.recv()
        assert event["type"] == "error" and "unknown world" in event["reason"]
        assert (await stranger.reader.readline()) == b""
        assert service.sessions.active == 0

        client = await _TcpClient.open(service)
        await client.send(op="hello", world="w2")
        welcome = await client.recv()
        assert welcome["type"] == "welcome" and welcome["world"] == "w2"
        assert welcome["spec_hash"]

        await client.send(op="create_world", world="lab", nodes=4, id="c")
        created = await client.recv_type("world-created")
        assert created["world"] == "lab" and created["nodes"] == 4

        await client.send(op="worlds")
        listing = await client.recv_type("worlds")
        assert [row["world"] for row in listing["worlds"]] \
            == ["w1", "w2", "lab"]

        await client.send(op="attach_world", world="lab", id="hop")
        attached = await client.recv_type("world-attached")
        assert attached["world"] == "lab" and attached["id"] == "hop"

        await client.send(op="watch_instance", instance=1)
        watching = await client.recv_type("watching")
        assert watching["world"] == "lab"
        assert watching["state"] == "pending"

        await client.send(op="propose", value="lab-v", id="p")
        await client.recv_type("ack")
        service.start_world()
        state = await client.recv_type("instance-state")
        assert state["world"] == "lab" and state["instance"] == 1

        await client.send(op="bye")
        await client.recv_type("bye")
        await client.close()
        await service.run_worlds()
        await service.shutdown()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_describe_prints_config_and_catalog(capsys):
    assert service_main(["--describe", "--nodes", "9", "--instances", "42",
                         "--protocol", "two-phase-cha",
                         "--queue-limit", "7", "--worlds", "3"]) == 0
    described = json.loads(capsys.readouterr().out)
    config = described["config"]
    assert config["world"]["n"] == 9
    assert config["workload"]["instances"] == 42
    assert config["protocol"] == "two-phase-cha"
    assert config["service"]["queue_limit"] == 7
    assert config["service"]["worlds"] == 3
    # The catalog is derived from the live wire tables.
    catalog = described["catalog"]
    assert catalog == events.catalog()
    assert set(catalog["ops"]) == set(events.OPS)
    assert set(catalog["events"]) == set(events.EVENTS)


def test_cli_serves_a_world_to_completion(capsys):
    assert service_main(["--nodes", "4", "--instances", "3",
                         "--tick-interval", "0"]) == 0
    out = capsys.readouterr().out
    assert "serving 1 x 4-node CHA world(s)" in out
    assert "1 world(s) complete after 9 total rounds" in out
