"""The service's determinism guarantee, pinned differentially.

A *served* world — sessions attaching mid-run, proposing into upcoming
instances, detaching again — must be byte-identical to a plain batch
:func:`repro.run` of the same spec with the accepted proposal schedule
replayed through ``protocol__proposer_factory``.  Identical means the
pickle of everything observable (trace, outputs, proposals, metrics,
invariant verdicts, violation contexts) matches byte for byte, across
the engine/channel/history reference-switch combinations the engine
differential suite uses.

The served side here drives :meth:`WorldDriver.tick` directly (the tick
is synchronous by design — the asyncio clock only decides *when* ticks
happen), with a scripted client population reacting to decision events,
so the accepted schedule is reproducible.
"""

from __future__ import annotations

import pickle

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.experiment import EnvironmentSpec, MetricsSpec, TwoPhaseCHA
from repro.experiment.runner import run
from repro.net import RandomLossAdversary, WindowAdversary
from repro.service import ConsensusService, ProposalLedger, ServiceConfig

pytestmark = pytest.mark.fast

#: (engine_ref, sim_fast, channel_fast) — the switch matrix of
#: tests/net/test_engine_differential.py.
MODES = [
    (False, True, True),    # the default production stack
    (False, True, False),
    (False, False, True),
    (False, False, False),
    (True, True, True),
]

INSTANCES = 12


def _instrument(mode):
    engine_ref, sim_fast, channel_fast = mode

    def instrument(sim):
        sim.use_reference_engine = engine_ref
        sim.fast_path = sim_fast
        sim.channel.use_reference = not channel_fast
    return instrument


def _spec_factory(env_name: str, *, history_ref: bool = False,
                  protocol_factory=CHA):
    def make() -> ExperimentSpec:
        if env_name == "lossy":
            environment = EnvironmentSpec(adversary=WindowAdversary(
                RandomLossAdversary(p_drop=0.3, p_false=0.2, seed=5),
                until=20))
            rcf = 30
        else:
            environment = EnvironmentSpec()
            rcf = 0
        return ExperimentSpec(
            protocol=protocol_factory(),
            world=ClusterWorld(n=6, rcf=rcf),
            environment=environment,
            workload=WorkloadSpec(instances=INSTANCES),
            metrics=MetricsSpec(
                metrics=("rounds", "total_broadcasts", "decided_instances"),
                invariants=("all",),
            ),
            use_reference_history=history_ref,
        )
    return make


def _observable(result) -> bytes:
    return pickle.dumps((result.trace, result.outputs, result.proposals,
                         result.metrics, result.invariants,
                         result.violation_context))


def _serve(spec_factory, *, mode=(False, True, True),
           rounds_per_tick: int = 3) -> tuple[bytes, tuple]:
    """Run a served world under a scripted client population.

    The script exercises every determinism-sensitive session behaviour:
    proposals queued before round 1 (default-next, node-targeted, and
    wildcard-instance), a session attaching mid-run, closed-loop
    proposals reacting to decision events, and a mid-run detach —
    then returns (observable bytes, the accepted proposal schedule).
    """
    service = ConsensusService(
        spec_factory(),
        ServiceConfig(rounds_per_tick=rounds_per_tick),
        instrument=_instrument(mode),
    )
    driver = service.driver
    first = service.connect(client="script-a")
    first.propose("alpha")                            # next open (1)
    first.propose("targeted", instance=2, node=3)     # one node's slot
    first.propose("wildcard", instance=3)             # every node's slot
    late = None
    while not driver.complete:
        driver.tick()
        if late is None and driver.current_round >= 9:
            late = service.connect(client="script-b")
            late.drain()  # consume the catch-up welcome
        for event in first.drain():
            if (event["type"] == "decision"
                    and event["instance"] % 2 == 0
                    and driver.ledger.next_open <= INSTANCES):
                first.propose(f"react.{event['instance']}")
        if (late is not None and not late.closed
                and driver.current_round >= 21):
            if driver.ledger.next_open <= INSTANCES:
                late.propose("parting-shot")
            late.bye()  # detach mid-run
    schedule = driver.ledger.schedule()
    first.close()
    return _observable(driver.result), schedule


def _batch(spec_factory, schedule, *, mode=(False, True, True)) -> bytes:
    """The equivalent batch run: the accepted schedule replayed."""
    spec = spec_factory().override(
        protocol__proposer_factory=ProposalLedger.scripted(schedule))
    return _observable(run(spec, instrument=_instrument(mode)))


@pytest.mark.parametrize("env_name", ["benign", "lossy"])
@pytest.mark.parametrize("mode", MODES,
                         ids=["default", "ref-channel", "no-fastpath",
                              "ref-stack", "ref-engine"])
def test_served_equals_batch_across_switches(env_name, mode):
    spec_factory = _spec_factory(env_name)
    served, schedule = _serve(spec_factory, mode=mode)
    assert schedule, "the script must actually land proposals"
    assert served == _batch(spec_factory, schedule, mode=mode)


def test_served_schedule_invariant_under_switches():
    """The reference switches change *how* rounds are computed, never
    what decides — so the scripted population must land the identical
    proposal schedule whichever stack serves it."""
    spec_factory = _spec_factory("lossy")
    schedules = {
        _serve(spec_factory, mode=mode)[1] for mode in map(tuple, MODES)
    }
    assert len(schedules) == 1


@pytest.mark.parametrize("history_ref", [False, True],
                         ids=["chain-history", "reference-history"])
def test_served_equals_batch_with_history_switch(history_ref):
    spec_factory = _spec_factory("lossy", history_ref=history_ref)
    served, schedule = _serve(spec_factory)
    assert served == _batch(spec_factory, schedule)


@pytest.mark.parametrize("rounds_per_tick", [1, 3, 7])
def test_served_equals_batch_across_tick_granularity(rounds_per_tick):
    """Tick chunking shifts *when* the script observes decisions (and
    therefore which instances its reactions land in), but each chunking
    still replays byte-identically against its own accepted schedule."""
    spec_factory = _spec_factory("benign")
    served, schedule = _serve(spec_factory, rounds_per_tick=rounds_per_tick)
    assert served == _batch(spec_factory, schedule)


def test_served_equals_batch_two_phase_cha():
    """The ablation protocol (2 rounds/instance) serves identically."""
    spec_factory = _spec_factory("benign", protocol_factory=TwoPhaseCHA)
    served, schedule = _serve(spec_factory)
    assert served == _batch(spec_factory, schedule)


def test_detach_and_slow_consumers_do_not_perturb_the_world():
    """The same world served three ways — no clients at all, a script
    with mid-run attach/detach but no proposals, and a never-reading
    slow consumer with a tiny queue — produces identical bytes (and an
    empty accepted schedule each time)."""
    spec_factory = _spec_factory("lossy")

    def serve_with(population) -> bytes:
        service = ConsensusService(
            spec_factory(), ServiceConfig(rounds_per_tick=3, queue_limit=4))
        population(service)
        while not service.driver.complete:
            service.driver.tick()
        assert service.driver.ledger.schedule() == ()
        return _observable(service.driver.result)

    def nobody(service):
        pass

    def churny_watcher(service):
        client = service.connect()
        client.drain()

    def slow_consumer(service):
        service.connect()  # never reads; queue_limit=4 forces drops

    results = {serve_with(nobody), serve_with(churny_watcher),
               serve_with(slow_consumer)}
    assert len(results) == 1
    # ... and the no-client serve matches the plain batch run too.
    assert results == {_batch(spec_factory, ())}
