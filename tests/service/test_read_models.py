"""The client-visible read models: instance watches and prefix feeds.

Both are per-session filters applied at publish time, in front of the
bounded ``SessionQueue`` fan-out — so a watcher streams every state
transition of its instance, a prefix subscriber sees only matching
decisions, non-watchers pay nothing for either, and a slow watcher
still drops oldest rather than stalling the world.
"""

from __future__ import annotations

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.service import ConsensusService, ServiceConfig

pytestmark = pytest.mark.fast


def _service(instances: int = 6, **config) -> ConsensusService:
    spec = ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=4),
        workload=WorkloadSpec(instances=instances),
        keep_trace=False,
    )
    return ConsensusService(spec, ServiceConfig(**config))


def _run_out(service: ConsensusService) -> None:
    while not service.driver.complete:
        service.driver.tick()


# ----------------------------------------------------------------------
# watch_instance
# ----------------------------------------------------------------------

def test_watcher_streams_every_state_transition_of_its_instance():
    service = _service()
    watcher = service.connect()
    watcher.drain()
    watcher.watch_instance(3, request_id="w3")
    ack = watcher.drain()[-1]
    assert ack["type"] == "watching"
    assert ack["instance"] == 3
    assert ack["state"] == "pending"  # nothing has run yet
    assert ack["id"] == "w3"
    _run_out(service)
    events = watcher.drain()
    transitions = [e for e in events if e["type"] == "instance-state"]
    assert [t["state"] for t in transitions] == ["running", "decided"]
    assert all(t["instance"] == 3 for t in transitions)
    decided = transitions[-1]
    assert decided["value"] is not None
    assert decided["agreement"] == "ok"
    # The decision feed itself still arrives (watches narrow
    # instance-state, not decisions).
    assert sum(1 for e in events if e["type"] == "decision") == 6


def test_watching_ack_reports_current_state_mid_run_and_after():
    # One round per tick so the mid-instance "running" window is
    # observable from outside a tick.
    service = _service(rounds_per_tick=1)
    client = service.connect()
    client.drain()
    service.driver.tick()  # round 1: instance 1 froze, nothing decided
    client.watch_instance(1)
    assert client.drain()[-1]["state"] == "running"
    client.watch_instance(5)
    assert client.drain()[-1]["state"] == "pending"
    service.driver.tick()
    service.driver.tick()  # instance 1 completes its 3 rounds
    client.watch_instance(1)
    ack = client.drain()[-1]
    assert ack["state"] == "decided"
    assert ack["agreement"] == "ok"


def test_non_watchers_receive_no_instance_state_events():
    service = _service()
    watcher = service.connect()
    bystander = service.connect()
    watcher.drain(), bystander.drain()
    watcher.watch_instance(2)
    watcher.drain()
    _run_out(service)
    assert all(e["type"] != "instance-state" for e in bystander.drain())
    assert any(e["type"] == "instance-state" for e in watcher.drain())


def test_unwatch_stops_the_stream():
    service = _service()
    watcher = service.connect()
    watcher.drain()
    watcher.watch_instance(1)
    watcher.watch_instance(5)
    watcher.drain()
    watcher.unwatch_instance(5, request_id="u5")
    ack = watcher.drain()[-1]
    assert ack["type"] == "unwatched" and ack["id"] == "u5"
    _run_out(service)
    transitions = [e for e in watcher.drain()
                   if e["type"] == "instance-state"]
    assert transitions and all(t["instance"] == 1 for t in transitions)


def test_watches_clear_on_attach_world_rebind():
    service = _service(worlds=2)
    client = service.connect(world="w1")
    client.drain()
    client.watch_instance(1)
    client.drain()
    client.attach_world("w2")
    client.drain()
    stats_of = lambda: [e for e in client.drain() if e["type"] == "stats"]
    client.stats()
    assert stats_of()[-1]["watched_instances"] == 0
    service.tick_all()
    assert all(e["type"] != "instance-state" for e in client.drain())


def test_slow_watcher_drops_oldest_but_the_world_never_stalls():
    service = _service(instances=40, queue_limit=4)
    watcher = service.connect()
    watcher.drain()
    for k in range(1, 41):
        watcher.watch_instance(k)
    # never reads from here on
    _run_out(service)
    assert service.driver.complete  # the clock outran the watcher
    assert watcher.dropped > 0
    assert len(watcher.drain()) == 4  # clamped at the bound


# ----------------------------------------------------------------------
# subscribe_prefix
# ----------------------------------------------------------------------

def test_prefix_subscription_narrows_the_decision_feed():
    service = _service()
    feed = service.connect()
    proposer = service.connect()
    feed.drain(), proposer.drain()
    feed.subscribe_prefix("hot.", request_id="s")
    ack = feed.drain()[-1]
    assert ack["type"] == "subscribed" and ack["prefix"] == "hot."
    proposer.propose("hot.alpha", instance=1)
    proposer.propose("cold.beta", instance=2)
    proposer.propose("hot.gamma", instance=3)
    _run_out(service)
    decisions = [e for e in feed.drain() if e["type"] == "decision"]
    assert [d["value"] for d in decisions] == ["hot.alpha", "hot.gamma"]
    # The unfiltered session saw everything, including default-proposer
    # instances the subscriber's prefix excluded.
    assert sum(1 for e in proposer.drain()
               if e["type"] == "decision") == 6


def test_empty_prefix_clears_the_filter():
    service = _service(instances=4)
    feed = service.connect()
    feed.drain()
    feed.subscribe_prefix("never-matches.")
    feed.drain()
    service.driver.tick()
    assert all(e["type"] != "decision" for e in feed.drain())
    feed.subscribe_prefix("")
    ack = feed.drain()[-1]
    assert ack["type"] == "subscribed" and ack["prefix"] is None
    _run_out(service)
    assert any(e["type"] == "decision" for e in feed.drain())


def test_prefix_filter_survives_attach_world():
    service = _service(worlds=2)
    feed = service.connect(world="w1")
    feed.drain()
    feed.subscribe_prefix("keep.")
    feed.drain()
    feed.attach_world("w2")
    feed.drain()
    feed.stats()
    stats = [e for e in feed.drain() if e["type"] == "stats"][-1]
    assert stats["value_prefix"] == "keep."
    service.tick_all()  # w2 decides default-proposer values
    assert all(e["type"] != "decision" for e in feed.drain())


def test_filtered_events_do_not_consume_queue_slots():
    """Filtering happens before enqueue: a tiny queue on a narrow
    subscription holds exactly the matching events."""
    service = _service(instances=8, queue_limit=2)
    feed = service.connect()
    proposer = service.connect()
    feed.drain(), proposer.drain()
    feed.subscribe_prefix("rare.")
    feed.drain()
    proposer.propose("rare.one", instance=4)
    _run_out(service)
    events = feed.drain()
    kinds = [e["type"] for e in events]
    # 8 decisions + world-complete flowed; only the rare.one decision
    # and the (unfiltered) world-complete occupied slots — no drops of
    # the matching event despite queue_limit=2.
    assert kinds == ["decision", "world-complete"]
    assert events[0]["value"] == "rare.one"
    assert feed.dropped == 0
