"""Multi-world isolation: registry, attach/detach, eviction, errors.

The satellite coverage ISSUE 10 asks for: sessions attaching and
detaching across worlds, per-world queue bounds and drop-oldest
behaviour, idle-world eviction versus an in-flight watch, and the
unknown-world / duplicate-create error paths.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import CHA, ClusterWorld, ExperimentSpec, WorkloadSpec
from repro.errors import ServiceError
from repro.service import (
    ConsensusService,
    ServiceConfig,
    WorldRegistry,
    spec_hash,
)

pytestmark = pytest.mark.fast


def _spec(n: int = 4, instances: int = 5) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=CHA(),
        world=ClusterWorld(n=n),
        workload=WorkloadSpec(instances=instances),
        keep_trace=False,
    )


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _service(worlds: int = 2, *, clock=None, **config) -> ConsensusService:
    return ConsensusService(
        _spec(), ServiceConfig(worlds=worlds, **config), clock=clock)


# ----------------------------------------------------------------------
# Registry identity
# ----------------------------------------------------------------------

def test_precreated_worlds_are_pinned_and_share_the_template_hash():
    service = _service(3)
    assert service.registry.names() == ["w1", "w2", "w3"]
    rows = service.registry.describe()
    assert all(row["pinned"] for row in rows)
    assert len({row["spec_hash"] for row in rows}) == 1
    assert rows[0]["spec_hash"] == spec_hash(_spec())


def test_anonymous_create_is_keyed_by_spec_hash():
    registry = _service(1).registry
    entry = registry.create(spec=_spec(n=6))
    assert entry.name == f"w-{spec_hash(_spec(n=6))[:12]}"
    with pytest.raises(ServiceError, match="attach_world to it instead"):
        registry.create(spec=_spec(n=6))
    # A different spec is a different identity — no clash.
    other = registry.create(spec=_spec(n=7))
    assert other.name != entry.name


def test_duplicate_named_create_and_unknown_world_errors():
    registry = _service(1).registry
    registry.create("mine")
    with pytest.raises(ServiceError, match="'mine' already exists"):
        registry.create("mine")
    with pytest.raises(ServiceError, match="unknown world 'nope'"):
        registry.get("nope")
    with pytest.raises(ServiceError, match="invalid world name"):
        registry.create("no spaces allowed")


def test_world_limit_is_enforced():
    service = ConsensusService(
        _spec(), ServiceConfig(worlds=2, max_worlds=3))
    service.registry.create("third")
    with pytest.raises(ServiceError, match="world limit reached"):
        service.registry.create("fourth")


def test_each_world_runs_a_private_spec_copy():
    """Worlds must not share mutable spec components (sweep idiom)."""
    service = _service(2)
    d1 = service.registry.get("w1").driver
    d2 = service.registry.get("w2").driver
    assert d1.spec is not d2.spec
    assert d1.spec.environment is not d2.spec.environment


# ----------------------------------------------------------------------
# Sessions across worlds
# ----------------------------------------------------------------------

def test_sessions_bind_to_named_worlds_and_streams_stay_separate():
    service = _service(2)
    a = service.connect(world="w1")
    b = service.connect(world="w2")
    assert a.world == "w1" and b.world == "w2"
    welcome_a = a.drain()[0]
    welcome_b = b.drain()[0]
    assert welcome_a["world"] == "w1" and welcome_b["world"] == "w2"
    a.propose("only-in-w1")
    service.registry.get("w1").driver.tick()  # w1 decides instance 1
    decisions_a = [e for e in a.drain() if e["type"] == "decision"]
    decisions_b = [e for e in b.drain() if e["type"] == "decision"]
    assert decisions_a and decisions_a[0]["world"] == "w1"
    assert decisions_a[0]["value"] == "only-in-w1"
    assert decisions_b == []  # w2 never ticked; nothing leaked across


def test_unknown_world_at_connect_is_rejected_before_any_state():
    service = _service(1)
    with pytest.raises(ServiceError, match="unknown world 'w9'"):
        service.connect(world="w9")
    assert service.sessions.active == 0
    assert service.registry.get("w1").sessions == 0


def test_attach_world_rebinds_and_counts_sessions():
    service = _service(2)
    client = service.connect(world="w1")
    client.drain()
    assert service.registry.get("w1").sessions == 1
    client.attach_world("w2", request_id="hop")
    attached = client.drain()
    assert attached[-1]["type"] == "world-attached"
    assert attached[-1]["world"] == "w2"
    assert attached[-1]["id"] == "hop"
    assert client.world == "w2"
    assert service.registry.get("w1").sessions == 0
    assert service.registry.get("w2").sessions == 1
    # seq continues across the re-bind: no stream reset.
    assert attached[-1]["seq"] > 0
    client.attach_world("missing")
    assert client.drain()[-1]["type"] == "error"
    assert client.world == "w2"  # failed attach leaves the binding alone


def test_worlds_listing_reflects_live_state():
    service = _service(2)
    client = service.connect(world="w2")
    client.drain()
    client.worlds()
    listing = client.drain()[-1]
    assert listing["type"] == "worlds"
    rows = {row["world"]: row for row in listing["worlds"]}
    assert rows["w1"]["sessions"] == 0
    assert rows["w2"]["sessions"] == 1
    assert rows["w2"]["pinned"] is True


def test_create_world_op_and_lazy_clock_start():
    async def scenario():
        service = _service(1, tick_interval=0.0)
        client = service.connect(world="w1")
        client.drain()
        service.start_world()
        client.create_world(world="fresh", nodes=3, instances=2,
                            request_id="c1")
        created = client.drain()[-1]
        assert created["type"] == "world-created"
        assert created["world"] == "fresh"
        assert created["nodes"] == 3
        assert created["instances"] == 2
        assert created["id"] == "c1"
        # Born after the clock release: the new world ticks by itself.
        client.attach_world("fresh")
        results = await service.run_worlds()
        assert set(results) == {"w1", "fresh"}
        await service.shutdown()
    asyncio.run(scenario())


def test_duplicate_create_surfaces_as_error_event_not_exception():
    service = _service(1)
    client = service.connect()
    client.drain()
    client.create_world(world="w1", request_id="dup")
    error = client.drain()[-1]
    assert error["type"] == "error"
    assert "already exists" in error["reason"]
    assert error["id"] == "dup"


# ----------------------------------------------------------------------
# Per-world queue bounds
# ----------------------------------------------------------------------

def test_queue_bounds_are_per_world_sessions_drop_independently():
    """A slow consumer on w1 drops oldest; a reader on w2 loses nothing
    — and neither world's clock stalls."""
    service = _service(2, queue_limit=3)
    slow = service.connect(world="w1")   # never reads
    fast = service.connect(world="w2")
    fast.drain()
    fast_events = []
    for _ in range(6):
        service.tick_all()
        fast_events.extend(fast.drain())  # a consumer that keeps up
    assert service.registry.get("w1").driver.complete
    assert service.registry.get("w2").driver.complete
    assert slow.dropped > 0
    assert fast.dropped == 0
    seqs = [e["seq"] for e in fast_events]
    assert seqs == list(range(1, len(fast_events) + 1))  # gapless
    slow_events = slow.drain()
    assert len(slow_events) == 3  # clamped at the queue bound
    assert slow_events[-1]["type"] == "world-complete"


# ----------------------------------------------------------------------
# Idle eviction
# ----------------------------------------------------------------------

def test_idle_world_evicts_after_grace_but_pinned_survives():
    clock = _FakeClock()
    service = _service(1, clock=clock, idle_world_grace_s=10.0)
    service.registry.create("scratch")
    clock.now = 5.0
    assert service.reap() == []  # inside the grace window
    clock.now = 11.0
    assert service.reap() == ["scratch"]
    assert "scratch" not in service.registry
    clock.now = 1000.0
    assert service.reap() == []  # pinned w1 never evicts
    assert "w1" in service.registry


def test_attached_session_protects_a_world_from_eviction():
    """An in-flight watch keeps its world alive: watches belong to
    attached sessions, and attached sessions zero out idleness."""
    clock = _FakeClock()
    service = _service(1, clock=clock, idle_world_grace_s=10.0)
    service.registry.create("watched")
    watcher = service.connect(world="watched")
    watcher.drain()
    watcher.watch_instance(3)
    clock.now = 1000.0
    assert service.reap() == []  # session attached → not idle
    # The watcher leaves; idleness starts *now*, not at creation.
    watcher.close()
    clock.now = 1005.0
    assert service.reap() == []
    clock.now = 1011.0
    assert service.reap() == ["watched"]


def test_eviction_stops_the_world_clock_task():
    async def scenario():
        clock = _FakeClock()
        service = _service(
            1, clock=clock, idle_world_grace_s=5.0, tick_interval=5.0)
        service.registry.create("doomed")
        service.start_world()
        await asyncio.sleep(0)  # let the tasks spin up
        task = service._world_tasks["doomed"]
        clock.now = 6.0
        assert service.reap() == ["doomed"]
        await asyncio.sleep(0)
        assert task.cancelled() or task.done()
        await service.shutdown()
    asyncio.run(scenario())


def test_recreating_an_evicted_world_starts_from_round_zero():
    clock = _FakeClock()
    service = _service(1, clock=clock, idle_world_grace_s=1.0)
    service.registry.create("phoenix")
    service.registry.get("phoenix").driver.tick()
    assert service.registry.get("phoenix").driver.current_round > 0
    clock.now = 2.0
    assert service.reap() == ["phoenix"]
    reborn = service.registry.create("phoenix")
    assert reborn.driver.current_round == 0
