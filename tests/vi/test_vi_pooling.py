"""VI payload pooling: zero steady-state wire allocations.

Trace-free emulation runs reuse one mutable wire payload per kind
(client messages, VN broadcasts, and the replica cores' CHA payloads)
instead of allocating fresh ones every virtual round.  This pins the
pools: once warm, whole additional virtual rounds construct no wire
objects at all.
"""

from __future__ import annotations

import pytest

from repro import ExperimentSpec, WorkloadSpec
from repro.core.ballot import Ballot, BallotPayload, VetoPayload
from repro.experiment import (
    DeployedWorld,
    DeviceSpec,
    MetricsSpec,
    VIEmulation,
)
from repro.experiment.runner import ExperimentStepper
from repro.geometry import Point
from repro.vi import CounterProgram, ScriptedClient, VNSite
from repro.vi.payloads import ClientMsg, VNMsg

pytestmark = pytest.mark.fast


def test_pooled_vi_run_allocates_no_wire_objects_in_steady_state(monkeypatch):
    """With ``keep_trace=False`` the runner pools VI payloads: after
    warm-up, stepping more virtual rounds constructs zero ``ClientMsg``,
    ``VNMsg``, ``BallotPayload``, ``Ballot`` or ``VetoPayload``
    objects."""
    # Count ``__init__`` calls, not ``__new__``: restoring a patched
    # ``__new__`` on a class that never defined one leaves a slot
    # dispatcher behind that forwards ctor args to ``object.__new__``
    # and poisons every later construction in the process.  ``__init__``
    # lives in each dataclass's own ``__dict__``, so monkeypatch
    # restores it exactly — and the pooled path mutates payloads via
    # ``object.__setattr__`` without ever re-entering ``__init__``.
    counts = {cls.__name__: 0
              for cls in (ClientMsg, VNMsg, BallotPayload, Ballot,
                          VetoPayload)}
    for cls in (ClientMsg, VNMsg, BallotPayload, Ballot, VetoPayload):
        def counting_init(self, *args, _name=cls.__name__,
                          _orig=cls.__init__, **kwargs):
            counts[_name] += 1
            _orig(self, *args, **kwargs)
        monkeypatch.setattr(cls, "__init__", counting_init)

    # A stable all-active deployment with a client speaking every
    # virtual round, so every pooled payload kind stays hot.
    sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(6.0, 0.0)))
    devices = (
        DeviceSpec(mobility=Point(-0.1, 0.1)),
        DeviceSpec(mobility=Point(0.1, 0.1)),
        DeviceSpec(mobility=Point(5.9, 0.1)),
        DeviceSpec(mobility=Point(6.1, 0.1)),
        DeviceSpec(mobility=Point(0.3, 0.0),
                   client=ScriptedClient(
                       {vr: ("add", vr) for vr in range(40)})),
    )
    spec = ExperimentSpec(
        protocol=VIEmulation(programs={0: CounterProgram(),
                                       1: CounterProgram()}),
        world=DeployedWorld(sites=sites, devices=devices),
        workload=WorkloadSpec(virtual_rounds=20),
        metrics=MetricsSpec(metrics=("availability",),
                            invariants=("replica_consistency",)),
        keep_trace=False,
    )
    stepper = ExperimentStepper(spec)  # ticks are whole virtual rounds
    stepper.step(3)  # warm-up: pooled payloads are created lazily
    warm = dict(counts)
    for name in ("ClientMsg", "VNMsg", "BallotPayload"):
        assert warm[name] > 0, f"the {name} pool was never built"
    stepper.step(10)
    assert counts == warm, \
        "steady-state virtual rounds allocated wire objects"
    result = stepper.finish()
    assert result.metrics["availability"][0] > 0.0
    result.assert_ok()
