"""Unit tests for the eleven-phase clock."""

import pytest

from repro.errors import ConfigurationError
from repro.vi import PHASE_COUNT, Phase, PhaseClock


class TestPhaseClock:
    def test_phase_count_is_eleven(self):
        # "four parts with a total of eleven phases" (Section 4.3).
        assert PHASE_COUNT == 11

    def test_rounds_per_virtual_round(self):
        assert PhaseClock(1).rounds_per_virtual_round == 13
        assert PhaseClock(4).rounds_per_virtual_round == 16

    def test_offsets_s1(self):
        clock = PhaseClock(1)
        phases = [clock.position(r).phase for r in range(13)]
        assert phases == [
            Phase.CLIENT, Phase.VN,
            Phase.SCHED_BALLOT, Phase.SCHED_VETO1, Phase.SCHED_VETO2,
            Phase.UNSCHED_BALLOT, Phase.UNSCHED_BALLOT, Phase.UNSCHED_BALLOT,
            Phase.UNSCHED_VETO1, Phase.UNSCHED_VETO2,
            Phase.JOIN, Phase.JOIN_ACK, Phase.RESET,
        ]

    def test_unsched_ballot_has_s_plus_2_slots(self):
        s = 5
        clock = PhaseClock(s)
        slots = [
            clock.position(r).slot
            for r in range(clock.rounds_per_virtual_round)
            if clock.position(r).phase is Phase.UNSCHED_BALLOT
        ]
        assert slots == list(range(s + 2))

    def test_every_phase_appears_every_virtual_round(self):
        clock = PhaseClock(3)
        phases = {
            clock.position(r).phase
            for r in range(clock.rounds_per_virtual_round)
        }
        assert phases == set(Phase)

    def test_virtual_round_advances(self):
        clock = PhaseClock(2)
        rpv = clock.rounds_per_virtual_round
        assert clock.position(0).virtual_round == 0
        assert clock.position(rpv - 1).virtual_round == 0
        assert clock.position(rpv).virtual_round == 1
        assert clock.position(rpv).phase is Phase.CLIENT

    def test_first_round_of(self):
        clock = PhaseClock(2)
        assert clock.first_round_of(0) == 0
        assert clock.first_round_of(3) == 3 * clock.rounds_per_virtual_round

    def test_rounds_for(self):
        clock = PhaseClock(1)
        assert clock.rounds_for(5) == 65

    def test_invalid_schedule_length(self):
        with pytest.raises(ConfigurationError):
            PhaseClock(0)

    def test_slot_zero_outside_unsched_ballot(self):
        clock = PhaseClock(2)
        for r in range(clock.rounds_per_virtual_round):
            pos = clock.position(r)
            if pos.phase is not Phase.UNSCHED_BALLOT:
                assert pos.slot == 0
