"""Integration tests for the join / join-ack / reset sub-protocol (§4.3)."""

import math

import pytest

from repro.geometry import Point
from repro.net import CrashSchedule, StaticMobility, WaypointMobility
from repro.vi import CounterProgram, JoinState, ScriptedClient, SilentProgram, VIWorld, VNSite


def walker_to(target, *, start=Point(0, 3), speed=0.05):
    return WaypointMobility(start, [target], speed=speed)


def make_world(program=None, n_replicas=2, **kwargs):
    sites = [VNSite(0, Point(0, 0))]
    world = VIWorld(sites, {0: program or CounterProgram()}, **kwargs)
    for i in range(n_replicas):
        angle = 2 * math.pi * i / max(n_replicas, 1)
        world.add_device(Point(0.15 * math.cos(angle), 0.15 * math.sin(angle)))
    return world


class TestJoin:
    def test_newcomer_joins_live_vn(self):
        world = make_world()
        newbie = world.add_device(walker_to(Point(0, 0.05)),
                                  initially_active=False)
        world.run_virtual_rounds(14)
        assert newbie in world.replicas_of(0)
        events = [evt for _, evt in world.devices[newbie].events]
        assert "join-req:0" in events and "acked:0" in events

    def test_joined_replica_carries_transferred_state(self):
        world = make_world()
        client = ScriptedClient({1: ("add", 42)})
        world.add_device(Point(0.4, 0), client=client, initially_active=False)
        newbie = world.add_device(walker_to(Point(0, 0.05)),
                                  initially_active=False)
        world.run_virtual_rounds(16)
        states = world.vn_states(0)
        assert newbie in states
        assert states[newbie] == 42
        world.check_replica_consistency(0)

    def test_two_simultaneous_joiners_both_succeed(self):
        world = make_world()
        a = world.add_device(walker_to(Point(0, 0.05), start=Point(0, 2)),
                             initially_active=False)
        b = world.add_device(walker_to(Point(0.05, 0), start=Point(2, 0)),
                             initially_active=False)
        world.run_virtual_rounds(16)
        # Their join requests collide, but the ack (triggered by the
        # detected collision) reaches both.
        assert a in world.replicas_of(0)
        assert b in world.replicas_of(0)
        world.check_replica_consistency(0)

    def test_join_only_in_scheduled_virtual_rounds(self):
        # Schedule length 2: VN 0 is scheduled every other virtual round.
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(1.0, 0))]
        world = VIWorld(sites, {0: SilentProgram(), 1: SilentProgram()})
        world.add_device(Point(0.1, 0))
        world.add_device(Point(1.1, 0))
        newbie = world.add_device(walker_to(Point(0, 0.05)),
                                  initially_active=False)
        world.run_virtual_rounds(20)
        join_rounds = [
            vr for vr, evt in world.devices[newbie].events
            if evt == "join-req:0"
        ]
        assert join_rounds
        assert all(world.schedule.is_scheduled(0, vr) for vr in join_rounds)

    def test_late_device_in_region_from_start_round_joins(self):
        world = make_world()
        clock = world.clock
        late = world.add_device(
            StaticMobility(Point(0.05, 0.05)),
            start_round=clock.rounds_for(3),
            initially_active=False,
        )
        world.run_virtual_rounds(12)
        assert late in world.replicas_of(0)


class TestReset:
    def test_reset_revives_dead_vn_with_initial_state(self):
        rpv = 13  # single site -> schedule length 1
        world = make_world(
            crashes=CrashSchedule.of({0: 3 * rpv, 1: 3 * rpv}),
        )
        client = ScriptedClient({1: ("add", 9)})
        world.add_device(Point(0.4, 0), client=client, initially_active=False)
        newbie = world.add_device(walker_to(Point(0, 0.05)),
                                  initially_active=False)
        world.run_virtual_rounds(16)
        assert newbie in world.replicas_of(0)
        events = [evt for _, evt in world.devices[newbie].events]
        assert "reset:0" in events
        # State was lost with the crash: the counter restarts from 0.
        assert world.vn_states(0)[newbie] == 0

    def test_no_reset_while_vn_alive(self):
        world = make_world()
        newbie = world.add_device(walker_to(Point(0, 0.05)),
                                  initially_active=False)
        world.run_virtual_rounds(16)
        events = [evt for _, evt in world.devices[newbie].events]
        assert "reset:0" not in events

    def test_reset_vn_resumes_full_service(self):
        rpv = 13
        world = make_world(crashes=CrashSchedule.of({0: 2 * rpv, 1: 2 * rpv}))
        newbie = world.add_device(walker_to(Point(0, 0.05)),
                                  initially_active=False)
        late_client = ScriptedClient({12: ("add", 4)})
        world.add_device(Point(0.4, 0), client=late_client,
                         initially_active=False)
        world.run_virtual_rounds(16)
        assert world.vn_states(0)[newbie] == 4
        tail = world.outcomes[0][-3:]
        assert all(o.live for o in tail)

    def test_two_joiners_reset_consistently(self):
        rpv = 13
        world = make_world(crashes=CrashSchedule.of({0: 2 * rpv, 1: 2 * rpv}))
        a = world.add_device(walker_to(Point(0, 0.05), start=Point(0, 2)),
                             initially_active=False)
        b = world.add_device(walker_to(Point(0.05, 0), start=Point(2, 0)),
                             initially_active=False)
        world.run_virtual_rounds(18)
        replicas = world.replicas_of(0)
        assert a in replicas and b in replicas
        world.check_replica_consistency(0)
        assert len(set(world.vn_states(0).values())) == 1


class TestJoinStateMachine:
    def test_out_of_region_device_stays_idle(self):
        world = make_world()
        idle = world.add_device(Point(10, 10), initially_active=False)
        world.run_virtual_rounds(6)
        device = world.devices[idle]
        assert device.replica is None
        assert device._join_state is JoinState.IDLE
        assert device.events == []

    def test_walker_through_region_abandons_join(self):
        # Walks straight through the region fast enough to exit before
        # a join can complete (region diameter 0.5, speed 0.25/round,
        # 13 rounds/virtual-round -> inside for less than one boundary).
        world = make_world()
        through = world.add_device(
            WaypointMobility(Point(0, 2), [Point(0, -2)], speed=0.3),
            initially_active=False,
        )
        world.run_virtual_rounds(10)
        device = world.devices[through]
        assert device.replica is None
        assert device._join_state is JoinState.IDLE
