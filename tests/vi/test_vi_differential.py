"""Differential verification of the phase-table VI emulation engine.

The phase-table engine (:class:`repro.vi.engine.VIRoundEngine`, the
default for deployed worlds) must be *byte-identical* to the seed
per-device dispatch (``use_reference_vi=True``: one full
``Simulator.step`` per real round) — traces, outputs, metrics, and
invariant verdicts all pickle to the same bytes — across every
combination with the engine, channel, history and core reference
switches, under loss, crash waves, and mid-run join/reset storms, for
several schedule lengths.  This suite is the regression gate for any
change to the phase tables: role partitioning, quiet-round skips,
sender/receiver prebinding, or the role-version table reuse.

Run it alone with ``pytest -m vi_differential`` (the PR CI pre-gate,
next to ``core_differential`` and ``shard_differential``).
"""

from __future__ import annotations

import pickle

import pytest

from repro import ExperimentSpec, WorkloadSpec
from repro.experiment import (
    DeployedWorld,
    DeviceSpec,
    EnvironmentSpec,
    MetricsSpec,
    VIEmulation,
)
from repro.experiment.runner import run
from repro.geometry import Point
from repro.net import (
    Crash,
    CrashPoint,
    CrashSchedule,
    NoiseBurstAdversary,
    RandomLossAdversary,
    WaypointMobility,
    WindowAdversary,
)
from repro.vi import CounterProgram, ScriptedClient, VIWorld, VNSite
from repro.vi.engine import reference_vi_forced

pytestmark = [pytest.mark.fast, pytest.mark.vi_differential]


def _result_bytes(spec_factory, *, vi_ref: bool,
                  engine_ref: bool = False, sim_fast: bool = True,
                  channel_fast: bool = True, history_ref: bool = False,
                  core_ref: bool = False) -> bytes:
    """Pickle of everything observable: trace, outputs, metrics,
    invariant verdicts, and violation contexts."""
    spec = spec_factory().override(
        use_reference_vi=vi_ref,
        use_reference_history=history_ref,
        use_reference_core=core_ref,
    )

    def instrument(sim):
        sim.use_reference_engine = engine_ref
        sim.fast_path = sim_fast
        sim.channel.use_reference = not channel_fast

    result = run(spec, instrument=instrument)
    return pickle.dumps((result.trace, result.outputs, result.metrics,
                         result.invariants, result.violation_context))


#: (vi_ref, engine_ref, sim_fast, channel_fast, history_ref, core_ref)
#: combinations; the all-reference stack is the anchor everything else
#: must match.  The phase-table engine falls back to per-round stepping
#: when the simulator itself is pinned reference (engine_ref=True with
#: vi_ref=False), so that row exercises the fallback path.
MODES = [
    (False, False, True, True, False, False),   # the production stack
    (True, False, True, True, False, False),    # reference VI, fast sim
    (False, True, True, True, False, False),    # engine-pin fallback
    (False, False, True, False, False, False),  # reference channel
    (False, False, True, True, True, False),    # reference history
    (False, False, True, True, False, True),    # reference core
    (False, False, False, False, False, False),  # slow sim path
]


def _environments(rpv: int):
    """Environment kwarg *factories* per scenario (adversaries carry RNG
    state, so every run needs a fresh one), scaled to the virtual round
    length so crashes land at virtual-round-relevant moments."""
    yield "benign", lambda: {}
    yield "lossy", lambda: {
        "rcf": 60,
        "adversary": WindowAdversary(
            RandomLossAdversary(p_drop=0.3, p_false=0.3, seed=5),
            until=40),
    }
    # Kills both of site 0's deployed replicas just after virtual round
    # 2: the walker that parked in the region must observe JOIN_ACK
    # silence, probe RESET, and rebirth the virtual node (Section 4.3) —
    # the join/reset storm case, under detector noise.
    yield "crash-wave", lambda: {
        "rcf": 30,
        "adversary": NoiseBurstAdversary(p_false=0.4, until=25, seed=9),
        "crashes": CrashSchedule([
            Crash(0, 2 * rpv, CrashPoint.AFTER_SEND),
            Crash(1, 2 * rpv + 3, CrashPoint.BEFORE_SEND),
        ]),
    }


def _spec_factory(schedule_length: int, env_factory):
    """A deployed world stressing every phase-table role: deployed
    replicas on two sites, an out-of-region client, a walker joiner,
    and a late-starting device that joins mid-run."""
    rpv = schedule_length + 12

    def spec_factory():
        env = env_factory()
        rcf = env.pop("rcf", 0)
        sites = (VNSite(0, Point(0.0, 0.0)), VNSite(1, Point(6.0, 0.0)))
        devices = (
            # Two deployed replicas per site.
            DeviceSpec(mobility=Point(-0.1, 0.1)),
            DeviceSpec(mobility=Point(0.1, 0.1)),
            DeviceSpec(mobility=Point(5.9, 0.1)),
            DeviceSpec(mobility=Point(6.1, 0.1)),
            # A client outside every region (radius r1/4 = 0.25).
            DeviceSpec(mobility=Point(0.3, 0.0),
                       client=ScriptedClient({2: ("add", 7),
                                              5: ("add", 11),
                                              8: ("add", 13)})),
            # A walker that parks inside site 0's region and joins.
            DeviceSpec(mobility=WaypointMobility(
                Point(0.0, 3.0), [Point(0.0, 0.05)], speed=0.05),
                initially_active=False),
            # A late arrival inside site 0's region: must join too.
            DeviceSpec(mobility=Point(0.05, 0.05),
                       start_round=3 * rpv),
        )
        return ExperimentSpec(
            protocol=VIEmulation(programs={0: CounterProgram(),
                                           1: CounterProgram()}),
            world=DeployedWorld(sites=sites, devices=devices, rcf=rcf,
                                min_schedule_length=schedule_length),
            environment=EnvironmentSpec(**env),
            workload=WorkloadSpec(virtual_rounds=12),
            metrics=MetricsSpec(metrics=("availability", "emulation_gaps"),
                                invariants=("replica_consistency",)),
        )

    return spec_factory


def _scenarios():
    for s in (1, 3, 7):
        for env_name, env_factory in _environments(s + 12):
            yield f"s{s}-{env_name}", _spec_factory(s, env_factory)


@pytest.mark.parametrize("name,spec_factory", list(_scenarios()),
                         ids=[name for name, _ in _scenarios()])
def test_vi_byte_identical_across_switch_matrix(name, spec_factory):
    anchor = _result_bytes(spec_factory, vi_ref=True, engine_ref=True,
                           sim_fast=False, channel_fast=False,
                           history_ref=True, core_ref=True)
    for mode in MODES:
        vi_ref, engine_ref, sim_fast, channel_fast, history_ref, core_ref \
            = mode
        assert _result_bytes(
            spec_factory, vi_ref=vi_ref, engine_ref=engine_ref,
            sim_fast=sim_fast, channel_fast=channel_fast,
            history_ref=history_ref, core_ref=core_ref,
        ) == anchor, mode


def test_vi_pooled_run_matches_traced_run():
    """A trace-free run pools VI payloads; its outputs, metrics and
    verdicts must still match the traced (unpooled) run exactly."""
    _, spec_factory = next(_scenarios())

    def observables(keep_trace: bool) -> bytes:
        result = run(spec_factory().override(keep_trace=keep_trace))
        return pickle.dumps((result.outputs, result.metrics,
                             result.invariants, result.violation_context))

    assert observables(False) == observables(True)


def test_reference_vi_env_switch(monkeypatch):
    site = VNSite(0, Point(0.0, 0.0))
    programs = {0: CounterProgram()}
    monkeypatch.delenv("REPRO_REFERENCE_VI", raising=False)
    assert not reference_vi_forced()
    assert not VIWorld([site], programs).use_reference_vi

    monkeypatch.setenv("REPRO_REFERENCE_VI", "1")
    assert reference_vi_forced()
    assert VIWorld([site], programs).use_reference_vi
    # An explicit constructor argument still wins.
    assert not VIWorld([site], programs,
                       use_reference_vi=False).use_reference_vi

    monkeypatch.setenv("REPRO_REFERENCE_VI", "0")
    assert not reference_vi_forced()


def test_spec_switch_reaches_world(monkeypatch):
    """ExperimentSpec.use_reference_vi pins the built VIWorld."""
    import repro.experiment.runner as runner_module

    seen = []
    real_world = runner_module.VIWorld

    def spy(*args, **kwargs):
        world = real_world(*args, **kwargs)
        seen.append(world.use_reference_vi)
        return world

    monkeypatch.setattr(runner_module, "VIWorld", spy)
    _, spec_factory = next(_scenarios())
    run(spec_factory().override(use_reference_vi=True,
                                workload__virtual_rounds=1))
    assert seen == [True]

    seen.clear()
    run(spec_factory().override(use_reference_vi=False,
                                workload__virtual_rounds=1))
    assert seen == [False]
