"""Unit tests for the device process: role management and dispatch."""

import pytest

from repro.geometry import Point
from repro.vi import (
    CounterProgram,
    JoinState,
    Phase,
    PhaseClock,
    Schedule,
    SilentClient,
    VIDevice,
    VNSite,
)

SITES = [VNSite(0, Point(0, 0)), VNSite(1, Point(10, 0))]


def make_device(position, *, client=None, initially_active=True):
    holder = {"pos": position}
    device = VIDevice(
        sites=SITES,
        programs={0: CounterProgram(), 1: CounterProgram()},
        schedule=Schedule({0: 0, 1: 0}, length=1),
        clock=PhaseClock(1),
        region_radius=0.25,
        locate=lambda: holder["pos"],
        client=client,
        initially_active=initially_active,
    )
    return device, holder


class TestRegionManagement:
    def test_deployment_activates_in_region_device(self):
        device, _ = make_device(Point(0.1, 0))
        device.send(0, False)  # CLIENT phase of vr 0
        assert device.replica is not None
        assert device.replica.site.vn_id == 0

    def test_out_of_region_device_stays_inactive(self):
        device, _ = make_device(Point(5, 5))
        device.send(0, False)
        assert device.replica is None

    def test_nearest_site_chosen(self):
        device, _ = make_device(Point(9.9, 0))
        device.send(0, False)
        assert device.replica.site.vn_id == 1

    def test_leaving_region_drops_replica(self):
        device, holder = make_device(Point(0.1, 0))
        device.send(0, False)
        assert device.replica is not None
        holder["pos"] = Point(5, 5)
        device.send(13, False)  # CLIENT phase of vr 1
        assert device.replica is None
        assert any(evt.startswith("left:") for _, evt in device.events)

    def test_entering_region_starts_join(self):
        device, holder = make_device(Point(5, 5), initially_active=False)
        device.send(0, False)
        assert device._join_state is JoinState.IDLE
        holder["pos"] = Point(0.1, 0)
        device.send(13, False)
        assert device._join_state is JoinState.WANT_JOIN
        assert device._join_target == 0

    def test_unknown_location_treated_as_outside(self):
        device = VIDevice(
            sites=SITES,
            programs={0: CounterProgram(), 1: CounterProgram()},
            schedule=Schedule({0: 0, 1: 0}, length=1),
            clock=PhaseClock(1),
            region_radius=0.25,
            locate=lambda: (_ for _ in ()).throw(KeyError(0)),
        )
        device.send(0, False)
        assert device.replica is None


class TestContention:
    def test_replica_device_contends_for_its_vn(self):
        device, _ = make_device(Point(0.1, 0))
        device.send(0, False)
        assert device.contend(1) == "vn0"

    def test_non_replica_device_does_not_contend(self):
        device, _ = make_device(Point(5, 5))
        device.send(0, False)
        assert device.contend(1) is None


class TestClientDispatch:
    def test_client_broadcast_wrapped_in_client_msg(self):
        from repro.vi import ScriptedClient
        client = ScriptedClient({0: "hello"})
        device, _ = make_device(Point(5, 5), client=client,
                                initially_active=False)
        out = device.send(0, False)
        assert out is not None and out.payload == "hello"
        assert out.virtual_round == 0

    def test_silent_client_sends_nothing(self):
        device, _ = make_device(Point(5, 5), client=SilentClient(),
                                initially_active=False)
        assert device.send(0, False) is None

    def test_client_and_replica_coexist(self):
        client = SilentClient()
        device, _ = make_device(Point(0.1, 0), client=client)
        device.send(0, False)
        assert device.replica is not None
        assert device.client is not None
