"""Unit tests for virtual-node broadcast schedules (Section 4.1)."""

import pytest

from repro.errors import ScheduleError
from repro.geometry import GridSpec, Point
from repro.vi import Schedule, VNSite, build_schedule, conflict_graph, verify_schedule

R1, R2 = 1.0, 1.5
CONFLICT = R1 + 2 * R2  # 4.0


def grid_sites(rows, cols, spacing):
    grid = GridSpec(rows=rows, cols=cols, spacing=spacing)
    return [VNSite(i, p) for i, p in enumerate(grid.sites())]


class TestConflictGraph:
    def test_close_sites_conflict(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(3.0, 0))]
        g = conflict_graph(sites, r1=R1, r2=R2)
        assert g.has_edge(0, 1)

    def test_boundary_distance_conflicts(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(CONFLICT, 0))]
        g = conflict_graph(sites, r1=R1, r2=R2)
        assert g.has_edge(0, 1)  # paper requires strictly greater distance

    def test_distant_sites_do_not_conflict(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(CONFLICT + 0.01, 0))]
        g = conflict_graph(sites, r1=R1, r2=R2)
        assert not g.has_edge(0, 1)

    def test_all_sites_are_nodes(self):
        sites = grid_sites(2, 2, 100.0)
        g = conflict_graph(sites, r1=R1, r2=R2)
        assert set(g.nodes) == {0, 1, 2, 3}


class TestBuildSchedule:
    def test_isolated_sites_share_slot(self):
        sites = grid_sites(3, 3, 50.0)  # far apart: no conflicts
        schedule = build_schedule(sites, r1=R1, r2=R2)
        assert schedule.length == 1
        assert all(schedule.slot_of(s.vn_id) == 0 for s in sites)

    def test_conflicting_pair_gets_two_slots(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(1.0, 0))]
        schedule = build_schedule(sites, r1=R1, r2=R2)
        assert schedule.length == 2
        assert schedule.slot_of(0) != schedule.slot_of(1)

    def test_dense_grid_valid(self):
        sites = grid_sites(4, 4, 2.0)
        schedule = build_schedule(sites, r1=R1, r2=R2)
        verify_schedule(schedule, sites, r1=R1, r2=R2)

    def test_schedule_length_grows_with_density(self):
        sparse = build_schedule(grid_sites(3, 3, 10.0), r1=R1, r2=R2)
        dense = build_schedule(grid_sites(3, 3, 1.0), r1=R1, r2=R2)
        assert dense.length > sparse.length

    def test_schedule_independent_of_count_at_fixed_density(self):
        # Overhead depends only on density (paper Section 1.4): growing the
        # deployment at the same spacing does not grow the schedule much.
        small = build_schedule(grid_sites(3, 3, 6.0), r1=R1, r2=R2)
        large = build_schedule(grid_sites(6, 6, 6.0), r1=R1, r2=R2)
        assert large.length <= small.length + 1

    def test_min_length_respected(self):
        sites = grid_sites(1, 1, 1.0)
        schedule = build_schedule(sites, r1=R1, r2=R2, min_length=5)
        assert schedule.length == 5

    def test_empty_sites_rejected(self):
        with pytest.raises(ScheduleError):
            build_schedule([], r1=R1, r2=R2)

    def test_duplicate_ids_rejected(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(0, Point(10, 0))]
        with pytest.raises(ScheduleError):
            build_schedule(sites, r1=R1, r2=R2)


class TestScheduleSemantics:
    def test_is_scheduled_cycles(self):
        schedule = Schedule({0: 0, 1: 1}, length=2)
        assert schedule.is_scheduled(0, 0)
        assert not schedule.is_scheduled(0, 1)
        assert schedule.is_scheduled(0, 2)
        assert schedule.is_scheduled(1, 1)

    def test_scheduled_in(self):
        schedule = Schedule({0: 0, 1: 1, 2: 0}, length=2)
        assert schedule.scheduled_in(0) == {0, 2}
        assert schedule.scheduled_in(3) == {1}

    def test_contains_and_ids(self):
        schedule = Schedule({7: 0}, length=1)
        assert 7 in schedule
        assert 8 not in schedule
        assert schedule.vn_ids == {7}

    def test_invalid_slot_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule({0: 3}, length=2)

    def test_invalid_length_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule({}, length=0)


class TestVerifySchedule:
    def test_missing_site_detected(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(10, 0))]
        schedule = Schedule({0: 0}, length=1)
        with pytest.raises(ScheduleError, match="incomplete"):
            verify_schedule(schedule, sites, r1=R1, r2=R2)

    def test_conflict_detected(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(1.0, 0))]
        schedule = Schedule({0: 0, 1: 0}, length=1)
        with pytest.raises(ScheduleError, match="conflict"):
            verify_schedule(schedule, sites, r1=R1, r2=R2)

    def test_valid_schedule_accepted(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(1.0, 0))]
        schedule = Schedule({0: 0, 1: 1}, length=2)
        verify_schedule(schedule, sites, r1=R1, r2=R2)
