"""Property-based tests for the emulation substrates."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Point
from repro.vi import (
    Phase,
    PhaseClock,
    build_schedule,
    verify_schedule,
    VNSite,
)

R1, R2 = 1.0, 1.5

coords = st.floats(min_value=-20.0, max_value=20.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def site_sets(draw, max_sites=12):
    count = draw(st.integers(1, max_sites))
    return [
        VNSite(i, Point(draw(coords), draw(coords)))
        for i in range(count)
    ]


class TestScheduleProperties:
    @given(site_sets())
    def test_built_schedules_always_verify(self, sites):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        verify_schedule(schedule, sites, r1=R1, r2=R2)

    @given(site_sets())
    def test_every_site_scheduled_exactly_once_per_cycle(self, sites):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        for site in sites:
            scheduled_rounds = [
                vr for vr in range(schedule.length)
                if schedule.is_scheduled(site.vn_id, vr)
            ]
            assert len(scheduled_rounds) == 1

    @given(site_sets())
    def test_conflicting_pairs_never_share_a_round(self, sites):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        threshold = R1 + 2 * R2
        for vr in range(schedule.length):
            chosen = [s for s in sites if schedule.is_scheduled(s.vn_id, vr)]
            for i, a in enumerate(chosen):
                for b in chosen[i + 1:]:
                    assert not a.location.within(b.location, threshold)

    @given(site_sets(), st.integers(0, 200))
    def test_schedule_cycles(self, sites, vr):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        for site in sites:
            assert (schedule.is_scheduled(site.vn_id, vr)
                    == schedule.is_scheduled(site.vn_id, vr + schedule.length))


class TestPhaseClockProperties:
    @given(st.integers(1, 12), st.integers(0, 5_000))
    def test_round_positions_partition_time(self, s, r):
        clock = PhaseClock(s)
        pos = clock.position(r)
        assert 0 <= pos.virtual_round == r // clock.rounds_per_virtual_round
        assert clock.first_round_of(pos.virtual_round) <= r
        assert r < clock.first_round_of(pos.virtual_round + 1)

    @given(st.integers(1, 12))
    def test_phase_histogram_per_virtual_round(self, s):
        clock = PhaseClock(s)
        counts: dict[Phase, int] = {}
        for r in range(clock.rounds_per_virtual_round):
            phase = clock.position(r).phase
            counts[phase] = counts.get(phase, 0) + 1
        assert counts[Phase.UNSCHED_BALLOT] == s + 2
        for phase in Phase:
            if phase is not Phase.UNSCHED_BALLOT:
                assert counts[phase] == 1

    @given(st.integers(1, 12), st.integers(0, 500))
    def test_unsched_slots_strictly_increase_within_phase(self, s, vr):
        clock = PhaseClock(s)
        base = clock.first_round_of(vr)
        slots = [
            clock.position(r).slot
            for r in range(base, base + clock.rounds_per_virtual_round)
            if clock.position(r).phase is Phase.UNSCHED_BALLOT
        ]
        assert slots == list(range(s + 2))
