"""Property-based tests for the emulation substrates."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Point
from repro.vi import (
    CounterProgram,
    Phase,
    PhaseClock,
    ScriptedClient,
    VIWorld,
    build_schedule,
    verify_schedule,
    VNSite,
)

R1, R2 = 1.0, 1.5

coords = st.floats(min_value=-20.0, max_value=20.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def site_sets(draw, max_sites=12):
    count = draw(st.integers(1, max_sites))
    return [
        VNSite(i, Point(draw(coords), draw(coords)))
        for i in range(count)
    ]


class TestScheduleProperties:
    @given(site_sets())
    def test_built_schedules_always_verify(self, sites):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        verify_schedule(schedule, sites, r1=R1, r2=R2)

    @given(site_sets())
    def test_every_site_scheduled_exactly_once_per_cycle(self, sites):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        for site in sites:
            scheduled_rounds = [
                vr for vr in range(schedule.length)
                if schedule.is_scheduled(site.vn_id, vr)
            ]
            assert len(scheduled_rounds) == 1

    @given(site_sets())
    def test_conflicting_pairs_never_share_a_round(self, sites):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        threshold = R1 + 2 * R2
        for vr in range(schedule.length):
            chosen = [s for s in sites if schedule.is_scheduled(s.vn_id, vr)]
            for i, a in enumerate(chosen):
                for b in chosen[i + 1:]:
                    assert not a.location.within(b.location, threshold)

    @given(site_sets(), st.integers(0, 200))
    def test_schedule_cycles(self, sites, vr):
        schedule = build_schedule(sites, r1=R1, r2=R2)
        for site in sites:
            assert (schedule.is_scheduled(site.vn_id, vr)
                    == schedule.is_scheduled(site.vn_id, vr + schedule.length))


class TestPhaseClockProperties:
    @given(st.integers(1, 12), st.integers(0, 5_000))
    def test_round_positions_partition_time(self, s, r):
        clock = PhaseClock(s)
        pos = clock.position(r)
        assert 0 <= pos.virtual_round == r // clock.rounds_per_virtual_round
        assert clock.first_round_of(pos.virtual_round) <= r
        assert r < clock.first_round_of(pos.virtual_round + 1)

    @given(st.integers(1, 12))
    def test_phase_histogram_per_virtual_round(self, s):
        clock = PhaseClock(s)
        counts: dict[Phase, int] = {}
        for r in range(clock.rounds_per_virtual_round):
            phase = clock.position(r).phase
            counts[phase] = counts.get(phase, 0) + 1
        assert counts[Phase.UNSCHED_BALLOT] == s + 2
        for phase in Phase:
            if phase is not Phase.UNSCHED_BALLOT:
                assert counts[phase] == 1

    @given(st.integers(1, 12), st.integers(0, 500))
    def test_unsched_slots_strictly_increase_within_phase(self, s, vr):
        clock = PhaseClock(s)
        base = clock.first_round_of(vr)
        slots = [
            clock.position(r).slot
            for r in range(base, base + clock.rounds_per_virtual_round)
            if clock.position(r).phase is Phase.UNSCHED_BALLOT
        ]
        assert slots == list(range(s + 2))


class TestPhaseClockBijection:
    """Real round ↔ (virtual round, phase, slot) is a bijection — the
    invariant the phase-table engine's offset-indexed dispatch rests on."""

    @given(st.integers(1, 12), st.integers(0, 5_000))
    def test_round_of_inverts_position(self, s, r):
        clock = PhaseClock(s)
        assert clock.round_of(clock.position(r)) == r

    @given(st.integers(1, 12), st.integers(0, 5_000))
    def test_offset_of_decomposes_rounds(self, s, r):
        clock = PhaseClock(s)
        pos = clock.position(r)
        assert (clock.first_round_of(pos.virtual_round)
                + clock.offset_of(pos.phase, pos.slot)) == r

    @given(st.integers(1, 12), st.integers(0, 400))
    def test_positions_for_enumerates_the_virtual_round(self, s, vr):
        clock = PhaseClock(s)
        positions = clock.positions_for(vr)
        assert len(positions) == clock.rounds_per_virtual_round
        first = clock.first_round_of(vr)
        assert [clock.round_of(p) for p in positions] == \
            list(range(first, first + clock.rounds_per_virtual_round))
        # Distinct positions: the mapping is injective within the round.
        assert len(set(positions)) == len(positions)


@st.composite
def deployed_worlds(draw):
    """Small random deployments: 1-3 far-apart sites, 0-3 replicas each,
    0-2 joiners, an optional out-of-region client, advanced 0-3 virtual
    rounds so roles (replica/joiner/none) settle mid-protocol."""
    n_sites = draw(st.integers(1, 3))
    min_len = draw(st.integers(1, 4))
    sites = [VNSite(i, Point(i * 6.0, 0.0)) for i in range(n_sites)]
    world = VIWorld(sites, {i: CounterProgram() for i in range(n_sites)},
                    min_schedule_length=min_len)
    for site in sites:
        for j in range(draw(st.integers(0, 3))):
            world.add_device(Point(site.location.x + 0.05 * (j + 1), 0.1))
    for k in range(draw(st.integers(0, 2))):
        target = sites[draw(st.integers(0, n_sites - 1))]
        world.add_device(Point(target.location.x - 0.05 * (k + 1), -0.1),
                         initially_active=False)
    if draw(st.booleans()):
        world.add_device(Point(0.5, 0.5),
                         client=ScriptedClient({1: ("add", 1)}))
    world.run_virtual_rounds(draw(st.integers(0, 3)))
    return world


def _expected_activation_sets(world, vr):
    """Per-offset sender/receiver node sets derived independently from
    the phase semantics and current device roles (the devices the seed
    reference dispatch would actually activate in each real round)."""
    schedule = world.schedule
    s = schedule.length
    rpv = world.clock.rounds_per_virtual_round
    slot_now = vr % s
    reps, sched, unsched, joiners, observers = \
        set(), set(), set(), set(), set()
    by_slot: dict[int, set] = {}
    for node, device in world.devices.items():
        if device.replica is not None:
            reps.add(node)
            observers.add(node)
            slot = schedule.slot_of(device.replica.site.vn_id)
            if slot == slot_now:
                sched.add(node)
            else:
                unsched.add(node)
                by_slot.setdefault(slot, set()).add(node)
        else:
            if device._join_target is not None:
                joiners.add(node)
            if device.client is not None:
                observers.add(node)
    empty: set = set()
    senders = [empty] * rpv
    receivers = [empty] * rpv
    receivers[0] = observers            # CLIENT: clients + replicas hear
    senders[1] = reps                   # VN broadcast
    receivers[1] = observers
    for off in (2, 3, 4):               # scheduled CHA
        senders[off] = receivers[off] = sched
    for slot, nodes in by_slot.items():  # unscheduled ballots by colour
        senders[5 + slot] = receivers[5 + slot] = nodes
    for off in (s + 7, s + 8):          # unscheduled veto-1 / veto-2
        senders[off] = receivers[off] = unsched
    senders[s + 9] = joiners            # JOIN requests
    receivers[s + 9] = reps
    senders[s + 10] = sched             # JOIN_ACK state transfer
    receivers[s + 10] = joiners | reps
    senders[s + 11] = reps              # RESET liveness pings
    receivers[s + 11] = joiners
    return senders, receivers


class TestPhaseTableActivationSets:
    """The phase-table engine's per-offset device sets must equal the
    activation sets of the seed per-device reference dispatch."""

    @settings(max_examples=25)
    @given(deployed_worlds())
    def test_table_matches_reference_activation_sets(self, world):
        vr = world.virtual_rounds_run
        table = world._engine.build_table(vr)
        exp_send, exp_recv = _expected_activation_sets(world, vr)
        for offset in range(world.clock.rounds_per_virtual_round):
            assert table.sender_nodes(offset) == exp_send[offset], offset
            assert table.receiver_nodes(offset) == exp_recv[offset], offset

    @settings(max_examples=25)
    @given(deployed_worlds())
    def test_table_contenders_are_the_replicas(self, world):
        table = world._engine.build_table(world.virtual_rounds_run)
        assert dict(table.contenders) == {
            node: f"vn{device.replica.site.vn_id}"
            for node, device in world.devices.items()
            if device.replica is not None
        }
