"""Integration tests for the full virtual-infrastructure emulation.

Covers: single-VN emulation, client interaction, replica consistency,
virtual-node-to-virtual-node communication, constant per-virtual-round
overhead, and behaviour under crashes and adversarial channels.
"""

import math

import pytest

from repro.detectors import EventuallyAccurateDetector
from repro.geometry import Point
from repro.net import CrashSchedule, RandomLossAdversary, WaypointMobility
from repro.types import Color
from repro.vi import (
    CounterProgram,
    EchoProgram,
    ScriptedClient,
    SilentClient,
    SilentProgram,
    VIWorld,
    VNSite,
)


def ring_positions(center, radius, n):
    return [
        Point(center.x + radius * math.cos(2 * math.pi * i / n),
              center.y + radius * math.sin(2 * math.pi * i / n))
        for i in range(n)
    ]


def single_vn_world(program=None, n_replicas=3, **kwargs):
    sites = [VNSite(0, Point(0, 0))]
    world = VIWorld(sites, {0: program or CounterProgram()}, **kwargs)
    for pos in ring_positions(Point(0, 0), 0.2, n_replicas):
        world.add_device(pos)
    return world


class TestSingleVirtualNode:
    def test_full_availability_in_stable_world(self):
        world = single_vn_world()
        world.run_virtual_rounds(10)
        assert world.availability(0) == 1.0

    def test_replica_states_agree(self):
        world = single_vn_world(program=SilentProgram())
        world.run_virtual_rounds(8)
        states = set(world.vn_states(0).values())
        assert states == {8}
        world.check_replica_consistency(0)

    def test_client_messages_reach_the_virtual_node(self):
        world = single_vn_world()
        client = ScriptedClient({1: ("add", 10), 4: ("add", 5)})
        world.add_device(Point(0.4, 0), client=client, initially_active=False)
        world.run_virtual_rounds(8)
        assert set(world.vn_states(0).values()) == {15}

    def test_vn_broadcasts_reach_clients(self):
        world = single_vn_world()
        listener = SilentClient()
        world.add_device(Point(0, 0.4), client=listener, initially_active=False)
        world.run_virtual_rounds(4)
        vn_payloads = [
            item for _, obs in listener.heard for item in obs.messages
            if item[0] == "vn"
        ]
        assert ("vn", 0, ("count", 0)) in vn_payloads

    def test_two_clients_same_round_collide_virtually(self):
        world = single_vn_world()
        a = ScriptedClient({2: ("add", 1)})
        b = ScriptedClient({2: ("add", 2)})
        world.add_device(Point(0.4, 0), client=a, initially_active=False)
        world.add_device(Point(-0.4, 0), client=b, initially_active=False)
        world.run_virtual_rounds(6)
        # Both clients transmitted in the same CLIENT phase: genuine
        # collision; the counter must not have absorbed either value.
        assert set(world.vn_states(0).values()) == {0}

    def test_clients_in_different_rounds_both_land(self):
        world = single_vn_world()
        a = ScriptedClient({2: ("add", 1)})
        b = ScriptedClient({3: ("add", 2)})
        world.add_device(Point(0.4, 0), client=a, initially_active=False)
        world.add_device(Point(-0.4, 0), client=b, initially_active=False)
        world.run_virtual_rounds(6)
        assert set(world.vn_states(0).values()) == {3}

    def test_single_replica_still_emulates(self):
        world = single_vn_world(n_replicas=1)
        world.run_virtual_rounds(5)
        assert world.availability(0) == 1.0


class TestOverheadTheorem:
    def test_rounds_per_virtual_round_independent_of_replicas(self):
        worlds = [single_vn_world(n_replicas=n) for n in (1, 4, 8)]
        assert len({w.clock.rounds_per_virtual_round for w in worlds}) == 1

    def test_rounds_per_virtual_round_depends_on_density(self):
        sparse = VIWorld(
            [VNSite(0, Point(0, 0)), VNSite(1, Point(50, 0))],
            {0: SilentProgram(), 1: SilentProgram()},
        )
        dense = VIWorld(
            [VNSite(0, Point(0, 0)), VNSite(1, Point(1.0, 0))],
            {0: SilentProgram(), 1: SilentProgram()},
        )
        assert sparse.clock.rounds_per_virtual_round == 13
        assert dense.clock.rounds_per_virtual_round == 14

    def test_emulation_messages_constant_size(self):
        world = single_vn_world(program=SilentProgram())
        world.run_virtual_rounds(30)
        # No join traffic, silent program: all messages are CHA payloads
        # of constant size regardless of execution length.
        sizes = world.sim.trace.message_sizes()
        assert len(set(sizes)) <= 3  # ballot / veto variants
        assert max(sizes) == max(sizes[:len(sizes) // 3])


class RecorderProgram(SilentProgram):
    """A virtual node whose state is everything it ever observed."""

    def init_state(self):
        return ()

    def step(self, state, vr, observation):
        return state + tuple(observation.messages)


class TestInterVNCommunication:
    def test_recorder_vn_hears_counter_vn(self):
        # Two VNs 0.5 apart: within each other's emergent virtual range.
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(0.5, 0))]
        world = VIWorld(sites, {0: CounterProgram(), 1: RecorderProgram()})
        for pos in ring_positions(Point(0, 0), 0.1, 2):
            world.add_device(pos)
        for pos in ring_positions(Point(0.5, 0), 0.1, 2):
            world.add_device(pos)
        world.run_virtual_rounds(8)
        world.check_replica_consistency(0)
        world.check_replica_consistency(1)
        state = next(iter(world.vn_states(1).values()))
        seen_counter = [item for item in state if item[0] == "vn" and item[1] == 0]
        assert seen_counter
        assert seen_counter[0][2] == ("count", 0)

    def test_far_vns_do_not_hear_each_other(self):
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(30, 0))]
        world = VIWorld(sites, {0: CounterProgram(), 1: RecorderProgram()})
        world.add_device(Point(0.1, 0))
        world.add_device(Point(30.1, 0))
        world.run_virtual_rounds(6)
        state = next(iter(world.vn_states(1).values()))
        assert not any(item[0] == "vn" and item[1] == 0 for item in state)

    def test_same_slot_vns_run_simultaneously_without_interference(self):
        # Far apart -> same slot -> both scheduled every virtual round.
        sites = [VNSite(0, Point(0, 0)), VNSite(1, Point(50, 0))]
        world = VIWorld(sites, {0: SilentProgram(), 1: SilentProgram()})
        world.add_device(Point(0.1, 0))
        world.add_device(Point(50.1, 0))
        world.run_virtual_rounds(6)
        assert world.schedule.length == 1
        assert world.availability(0) == 1.0
        assert world.availability(1) == 1.0


class TestCrashesAndChurn:
    def test_emulation_survives_minority_crash(self):
        world = single_vn_world(n_replicas=3, crashes=CrashSchedule.of({0: 30}))
        world.run_virtual_rounds(10)
        assert world.availability(0) > 0.8
        world.check_replica_consistency(0)

    def test_vn_dies_with_all_replicas(self):
        world = single_vn_world(n_replicas=2,
                                crashes=CrashSchedule.of({0: 26, 1: 26}))
        world.run_virtual_rounds(8)
        # Virtual rounds after the crash have no emulators at all.
        assert world.emulation_gaps(0) >= 5
        assert world.availability(0) < 1.0

    def test_replica_leaving_region_stops_emulating(self):
        sites = [VNSite(0, Point(0, 0))]
        world = VIWorld(sites, {0: SilentProgram()})
        world.add_device(Point(0.1, 0))
        walker = world.add_device(
            WaypointMobility(Point(0.1, 0.1), [Point(5, 5)], speed=0.2),
        )
        world.run_virtual_rounds(6)
        assert walker not in world.replicas_of(0)
        assert any(evt.startswith("left:") for _, evt in world.devices[walker].events)
        world.check_replica_consistency(0)


class TestAdversarialEmulation:
    def test_consistency_under_lossy_channel(self):
        world = single_vn_world(
            n_replicas=4,
            adversary=RandomLossAdversary(p_drop=0.3, p_false=0.2, seed=5),
            detector=EventuallyAccurateDetector(racc=70),
            rcf=70,
            cm_stable_round=70,
        )
        client = ScriptedClient({vr: ("add", 1) for vr in range(2, 20, 3)})
        world.add_device(Point(0.4, 0), client=client, initially_active=False)
        world.run_virtual_rounds(20)
        world.check_replica_consistency(0)
        # After stabilisation (round 70 = virtual round ~5) the node runs.
        tail = world.outcomes[0][8:]
        assert all(o.live for o in tail)

    def test_availability_degrades_but_recovers(self):
        world = single_vn_world(
            n_replicas=3,
            adversary=RandomLossAdversary(p_drop=0.6, p_false=0.4, seed=9),
            detector=EventuallyAccurateDetector(racc=90),
            rcf=90,
            cm_stable_round=90,
        )
        world.run_virtual_rounds(16)
        pre = [o.live for o in world.outcomes[0][:6]]
        post = [o.live for o in world.outcomes[0][9:]]
        assert all(post), "stabilised tail must be fully live"
        world.check_replica_consistency(0)
