"""Unit tests for the replica runtime, driven phase by phase."""

import pytest

from repro.core.ballot import BallotPayload, VetoPayload
from repro.geometry import Point
from repro.types import BOTTOM, Color
from repro.vi import (
    ClientMsg,
    CounterProgram,
    JoinRequest,
    Phase,
    Schedule,
    SilentProgram,
    VNMsg,
    VNSite,
    VirtualObservation,
)
from repro.vi.phases import PhasePosition
from repro.vi.replica import ReplicaRuntime, observation_from_value

SITE = VNSite(0, Point(0, 0))


def make_replica(program=None, schedule=None):
    schedule = schedule or Schedule({0: 0}, length=1)
    return ReplicaRuntime(SITE, program or CounterProgram(), schedule)


def pos(phase, vr=0, slot=0):
    return PhasePosition(vr, phase, slot)


def run_clean_round(replica, vr=0, client_payloads=()):
    """Drive one full virtual round with clean single-leader CHA."""
    replica.send_for(pos(Phase.CLIENT, vr), False)
    replica.deliver_for(
        pos(Phase.CLIENT, vr),
        [ClientMsg(vr, p) for p in client_payloads],
        False,
    )
    msg = replica.send_for(pos(Phase.VN, vr), True)
    replica.deliver_for(pos(Phase.VN, vr), [msg] if msg else [], False)
    ballot = replica.send_for(pos(Phase.SCHED_BALLOT, vr), True)
    replica.deliver_for(pos(Phase.SCHED_BALLOT, vr), [ballot], False)
    assert replica.send_for(pos(Phase.SCHED_VETO1, vr), False) is None
    replica.deliver_for(pos(Phase.SCHED_VETO1, vr), [], False)
    assert replica.send_for(pos(Phase.SCHED_VETO2, vr), False) is None
    replica.deliver_for(pos(Phase.SCHED_VETO2, vr), [], False)
    return msg


class TestObservationDecoding:
    def test_bottom_is_unknown(self):
        assert observation_from_value(BOTTOM) == VirtualObservation.unknown()

    def test_value_decoded(self):
        obs = observation_from_value(((("cl", "x"),), False, True))
        assert obs.messages == (("cl", "x"),) and not obs.collision


class TestCleanRound:
    def test_instance_green_and_aligned(self):
        r = make_replica()
        run_clean_round(r, 0, client_payloads=[("add", 2)])
        assert r.core.k == 1
        assert r.round_colors[0] is Color.GREEN
        assert r.vn_state() == 2

    def test_counter_accumulates_across_rounds(self):
        r = make_replica()
        run_clean_round(r, 0, client_payloads=[("add", 2)])
        run_clean_round(r, 1, client_payloads=[("add", 3)])
        assert r.vn_state() == 5

    def test_vn_message_emitted_by_leader(self):
        r = make_replica()
        msg = run_clean_round(r, 0)
        assert isinstance(msg, VNMsg)
        assert msg.payload == ("count", 0)

    def test_scheduled_non_leader_stays_silent_in_vn_phase(self):
        r = make_replica()
        out = r.send_for(pos(Phase.VN), False)
        assert out is None


class TestVNMessageGating:
    def test_no_emission_when_last_instance_not_green(self):
        r = make_replica()
        # Instance 1 goes yellow (veto-2 collision).
        r.send_for(pos(Phase.CLIENT), False)
        ballot = r.send_for(pos(Phase.SCHED_BALLOT), True)
        r.deliver_for(pos(Phase.SCHED_BALLOT), [ballot], False)
        r.deliver_for(pos(Phase.SCHED_VETO1), [], False)
        r.deliver_for(pos(Phase.SCHED_VETO2), [], True)
        assert r.round_colors[0] is Color.YELLOW
        assert r.vn_message(1) is None

    def test_misaligned_core_never_speaks(self):
        r = make_replica()
        assert r.vn_message(5) is None  # core.k == 0 != 5

    def test_fresh_replica_speaks_at_round_zero(self):
        r = make_replica()
        assert r.vn_message(0) == ("count", 0)


class TestProposals:
    def test_proposal_reflects_observation(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        r.deliver_for(pos(Phase.CLIENT), [ClientMsg(0, ("add", 1))], False)
        r.deliver_for(pos(Phase.VN), [VNMsg(9, 0, "hi")], True)
        payload = r.send_for(pos(Phase.SCHED_BALLOT), True)
        msgs, collision, vn_sent = payload.ballot.value
        assert ("cl", ("add", 1)) in msgs
        assert ("vn", 9, "hi") in msgs
        assert collision and not vn_sent

    def test_own_vn_message_not_in_observation(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        r.deliver_for(pos(Phase.VN), [VNMsg(0, 0, ("count", 0))], False)
        payload = r.send_for(pos(Phase.SCHED_BALLOT), True)
        msgs, _, vn_sent = payload.ballot.value
        assert msgs == () and vn_sent

    def test_foreign_tag_ballots_ignored(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        own = r.send_for(pos(Phase.SCHED_BALLOT), True)
        foreign = BallotPayload(("vn", 99), 1, own.ballot)
        r.deliver_for(pos(Phase.SCHED_BALLOT), [foreign], False)
        assert r.core.color_of(1) is Color.RED  # nothing usable received

    def test_foreign_vetoes_ignored(self):
        r = make_replica()
        run = run_clean_round  # instance 1 cleanly...
        r.send_for(pos(Phase.CLIENT), False)
        own = r.send_for(pos(Phase.SCHED_BALLOT), True)
        r.deliver_for(pos(Phase.SCHED_BALLOT), [own], False)
        r.deliver_for(pos(Phase.SCHED_VETO1), [VetoPayload(("vn", 99), 1, 1)], False)
        r.deliver_for(pos(Phase.SCHED_VETO2), [], False)
        assert r.round_colors[0] is Color.GREEN


class TestUnscheduledPath:
    def test_ballot_only_in_own_slot(self):
        schedule = Schedule({0: 1}, length=3)  # our slot is 1
        r = ReplicaRuntime(SITE, SilentProgram(), schedule)
        r.send_for(pos(Phase.CLIENT, vr=0), False)
        # Virtual round 0: slot 0 is scheduled, we are not.
        assert r.send_for(pos(Phase.UNSCHED_BALLOT, vr=0, slot=0), True) is None
        payload = r.send_for(pos(Phase.UNSCHED_BALLOT, vr=0, slot=1), True)
        assert isinstance(payload, BallotPayload)
        assert r.send_for(pos(Phase.UNSCHED_BALLOT, vr=0, slot=2), True) is None

    def test_scheduled_vn_skips_unscheduled_phases(self):
        schedule = Schedule({0: 0}, length=2)
        r = ReplicaRuntime(SITE, SilentProgram(), schedule)
        r.send_for(pos(Phase.CLIENT, vr=0), False)
        # vr 0: we are scheduled -> no unscheduled ballot.
        assert r.send_for(pos(Phase.UNSCHED_BALLOT, vr=0, slot=0), True) is None


class TestJoinSupport:
    def test_join_activity_triggers_ack_conditions(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        r.deliver_for(pos(Phase.JOIN), [JoinRequest(0, 0)], False)
        ack = r.send_for(pos(Phase.JOIN_ACK), True)
        assert ack is not None and ack.vn_id == 0
        assert "k" in ack.snapshot

    def test_no_ack_without_activity(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        assert r.send_for(pos(Phase.JOIN_ACK), True) is None

    def test_no_ack_when_not_cm_active(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        r.deliver_for(pos(Phase.JOIN), [], True)  # collision counts
        assert r.send_for(pos(Phase.JOIN_ACK), False) is None

    def test_alive_ping_on_activity(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        r.deliver_for(pos(Phase.JOIN), [], True)
        ping = r.send_for(pos(Phase.RESET), False)
        assert ping is not None and ping.vn_id == 0

    def test_activity_resets_at_round_boundary(self):
        r = make_replica()
        r.send_for(pos(Phase.CLIENT), False)
        r.deliver_for(pos(Phase.JOIN), [JoinRequest(0, 0)], False)
        r.send_for(pos(Phase.CLIENT, vr=1), False)
        assert r.send_for(pos(Phase.RESET, vr=1), False) is None


class TestSnapshotAndReset:
    def test_snapshot_roundtrip_preserves_vn_state(self):
        r = make_replica()
        run_clean_round(r, 0, client_payloads=[("add", 7)])
        snap = r.core.snapshot()
        clone = ReplicaRuntime(SITE, CounterProgram(),
                               Schedule({0: 0}, length=1), snapshot=snap)
        assert clone.vn_state() == 7
        assert clone.core.k == 1

    def test_reset_anchors_fresh_state(self):
        r = ReplicaRuntime(SITE, CounterProgram(),
                           Schedule({0: 0}, length=1), reset_at=5)
        assert r.core.k == 5
        assert r.vn_state() == 0
        assert r.vn_message(5) == ("count", 0)

    def test_snapshot_and_reset_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ReplicaRuntime(SITE, CounterProgram(),
                           Schedule({0: 0}, length=1),
                           snapshot={}, reset_at=1)
