"""Unit tests for virtual-node programs."""

from repro.vi import (
    CounterProgram,
    EchoProgram,
    MailboxProgram,
    SilentProgram,
    VirtualObservation,
)


def obs(*messages, collision=False):
    return VirtualObservation(tuple(messages), collision)


class TestVirtualObservation:
    def test_unknown_is_bare_collision(self):
        u = VirtualObservation.unknown()
        assert u.messages == () and u.collision

    def test_frozen(self):
        import pytest
        o = obs()
        with pytest.raises(Exception):
            o.collision = True  # type: ignore[misc]


class TestSilentProgram:
    def test_never_emits(self):
        p = SilentProgram()
        assert p.emit(p.init_state(), 0) is None

    def test_counts_rounds(self):
        p = SilentProgram()
        s = p.init_state()
        for vr in range(5):
            s = p.step(s, vr, obs())
        assert s == 5


class TestCounterProgram:
    def test_adds_client_contributions(self):
        p = CounterProgram()
        s = p.step(p.init_state(), 0, obs(("cl", ("add", 3)), ("cl", ("add", 4))))
        assert s == 7

    def test_ignores_non_add_payloads(self):
        p = CounterProgram()
        s = p.step(0, 0, obs(("cl", "hello"), ("vn", 2, ("add", 5))))
        assert s == 0

    def test_unknown_observation_freezes_state(self):
        p = CounterProgram()
        assert p.step(9, 0, VirtualObservation.unknown()) == 9

    def test_emits_count(self):
        p = CounterProgram()
        assert p.emit(42, 7) == ("count", 42)

    def test_deterministic(self):
        p = CounterProgram()
        o = obs(("cl", ("add", 1)))
        assert p.step(0, 0, o) == p.step(0, 0, o)


class TestEchoProgram:
    def test_echoes_last_client_payload(self):
        p = EchoProgram()
        s = p.step(p.init_state(), 0, obs(("cl", "hello")))
        assert p.emit(s, 1) == ("echo", "hello")

    def test_silent_until_first_message(self):
        p = EchoProgram()
        assert p.emit(p.init_state(), 0) is None

    def test_retains_state_on_silence(self):
        p = EchoProgram()
        s = p.step(None, 0, obs(("cl", "x")))
        s = p.step(s, 1, obs())
        assert p.emit(s, 2) == ("echo", "x")


class TestMailboxProgram:
    def test_local_delivery_to_inbox(self):
        p = MailboxProgram(0, next_hop={})
        s = p.step(p.init_state(), 0, obs(("cl", ("send", 0, 0, "hi"))))
        inbox, outbox = s
        assert inbox == ((0, "hi"),) and outbox == ()

    def test_forwarding_enqueues_and_emits(self):
        p = MailboxProgram(0, next_hop={2: 1})
        s = p.step(p.init_state(), 0, obs(("cl", ("send", 0, 2, "pkt"))))
        assert p.emit(s, 1) == ("relay", 1, 2, "pkt")

    def test_emit_dequeues_on_step(self):
        p = MailboxProgram(0, next_hop={2: 1})
        s = p.step(p.init_state(), 0, obs(("cl", ("send", 0, 2, "pkt"))))
        s = p.step(s, 1, obs())
        assert p.emit(s, 2) is None

    def test_relay_accepted_only_by_named_next_hop(self):
        relay = ("relay", 1, 2, "pkt")
        hop1 = MailboxProgram(1, next_hop={2: 2})
        other = MailboxProgram(3, next_hop={2: 2})
        s1 = hop1.step(hop1.init_state(), 0, obs(("vn", 0, relay)))
        s3 = other.step(other.init_state(), 0, obs(("vn", 0, relay)))
        assert s1 == ((), ((2, "pkt"),))
        assert s3 == ((), ())

    def test_relay_reaching_destination_lands_in_inbox(self):
        p = MailboxProgram(2, next_hop={})
        s = p.step(p.init_state(), 0, obs(("vn", 1, ("relay", 2, 2, "pkt"))))
        assert s == (((2, "pkt"),), ())

    def test_unroutable_destination_dropped(self):
        p = MailboxProgram(0, next_hop={})
        s = p.step(p.init_state(), 0, obs(("cl", ("send", 0, 9, "lost"))))
        assert s == ((), ())
