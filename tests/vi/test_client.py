"""Unit tests for client programs and the client runtime."""

from repro.vi import ScriptedClient, SilentClient, VirtualObservation
from repro.vi.client import ClientRuntime


class TestSilentClient:
    def test_records_observations(self):
        c = SilentClient()
        obs = VirtualObservation((("cl", "x"),), False)
        assert c.on_round(3, obs) is None
        assert c.heard == [(3, obs)]


class TestScriptedClient:
    def test_emits_next_rounds_payload(self):
        c = ScriptedClient({2: "hello"})
        assert c.on_round(1, VirtualObservation((), False)) == "hello"
        assert c.on_round(2, VirtualObservation((), False)) is None

    def test_round_zero_payload_via_initial_call(self):
        c = ScriptedClient({0: "first"})
        assert c.on_round(-1, VirtualObservation((), False)) == "first"


class TestClientRuntime:
    def test_first_round_feeds_empty_observation(self):
        program = SilentClient()
        rt = ClientRuntime(program)
        rt.begin_virtual_round(0)
        assert program.heard == [(-1, VirtualObservation((), False))]

    def test_observation_accumulates_both_phases(self):
        program = SilentClient()
        rt = ClientRuntime(program)
        rt.begin_virtual_round(0)
        rt.observe_client_phase(["a"], collision=False)
        rt.observe_vn_phase([(7, ("count", 1))], collision=False)
        rt.begin_virtual_round(1)
        vr, obs = program.heard[-1]
        assert vr == 0
        assert obs.messages == (("cl", "a"), ("vn", 7, ("count", 1)))
        assert not obs.collision

    def test_collision_flag_sticky_within_round(self):
        program = SilentClient()
        rt = ClientRuntime(program)
        rt.begin_virtual_round(0)
        rt.observe_client_phase([], collision=True)
        rt.observe_vn_phase([], collision=False)
        rt.begin_virtual_round(1)
        assert program.heard[-1][1].collision

    def test_scratch_resets_between_rounds(self):
        program = SilentClient()
        rt = ClientRuntime(program)
        rt.begin_virtual_round(0)
        rt.observe_client_phase(["x"], collision=True)
        rt.begin_virtual_round(1)
        rt.begin_virtual_round(2)
        assert program.heard[-1][1] == VirtualObservation((), False)

    def test_emitted_payload_returned(self):
        rt = ClientRuntime(ScriptedClient({0: "go", 1: "again"}))
        assert rt.begin_virtual_round(0) == "go"
        assert rt.begin_virtual_round(1) == "again"
        assert rt.begin_virtual_round(2) is None
